//! Argument flattening ("unboxing of function arguments", paper §3).
//!
//! A `fix`-bound function whose single parameter is a tuple that the body
//! only ever destructures is rewritten to take the components as separate
//! parameters; saturated calls pass the components directly and no longer
//! allocate the argument tuple. Escaping uses are eta-wrapped.
//!
//! Besides removing an allocation per call, this restores tail calls for
//! the idiomatic `fun loop (n, acc) = ... loop (n - 1, acc') ...` pattern:
//! without flattening the argument tuple needs a region whose `letregion`
//! scope would otherwise enclose the call (the ML Kit's §4.4 limitation
//! would then apply to *every* tupled loop).

use crate::exp::{LExp, LProgram, VarId};
use crate::opt::simplify::for_each_child_mut;
use crate::ty::LTy;
use std::collections::HashMap;

/// Runs argument flattening; returns the number of functions rewritten.
pub fn flatten(prog: &mut LProgram) -> usize {
    let mut cands: HashMap<VarId, usize> = HashMap::new();
    collect_candidates(&prog.body, &mut cands);
    if cands.is_empty() {
        return 0;
    }
    // Verify usage: the parameter may only appear under `Select`, and the
    // function itself only as a saturated single-argument callee or as a
    // value (eta-wrapped below).
    let mut param_of: HashMap<VarId, (VarId, usize)> = HashMap::new();
    find_params(&prog.body, &cands, &mut param_of);
    let mut ok: HashMap<VarId, usize> = HashMap::new();
    for (f, arity) in &cands {
        if let Some((p, k)) = param_of.get(f) {
            if k == arity && param_clean(&prog.body, *p) {
                ok.insert(*f, *arity);
            }
        }
    }
    if ok.is_empty() {
        return 0;
    }
    let n = ok.len();
    rewrite(&mut prog.body, &ok, &mut prog.vars);
    n
}

/// Candidate functions: single tuple-typed parameter, inferred from the
/// parameter type or from consistent `Select` arities.
fn collect_candidates(e: &LExp, out: &mut HashMap<VarId, usize>) {
    if let LExp::Fix { funs, .. } = e {
        for f in funs {
            if let [(_, LTy::Tuple(ts))] = f.params.as_slice() {
                if ts.len() >= 2 {
                    out.insert(f.var, ts.len());
                }
            }
        }
    }
    e.for_each_child(|c| collect_candidates(c, out));
}

fn find_params(e: &LExp, cands: &HashMap<VarId, usize>, out: &mut HashMap<VarId, (VarId, usize)>) {
    if let LExp::Fix { funs, .. } = e {
        for f in funs {
            if let Some(&k) = cands.get(&f.var) {
                out.insert(f.var, (f.params[0].0, k));
            }
        }
    }
    e.for_each_child(|c| find_params(c, cands, out));
}

/// `true` if every occurrence of `p` is the scrutinee of a `Select`.
fn param_clean(e: &LExp, p: VarId) -> bool {
    match e {
        LExp::Var(v) => *v != p,
        LExp::Select { tup, .. } if matches!(tup.as_ref(), LExp::Var(v) if *v == p) => true,
        _ => {
            let mut ok = true;
            e.for_each_child(|c| ok &= param_clean(c, p));
            ok
        }
    }
}

fn rewrite(e: &mut LExp, ok: &HashMap<VarId, usize>, vars: &mut crate::exp::VarTable) {
    // Saturated calls are handled before descending: the callee `Var` must
    // not be rewritten as an escaping use.
    if let LExp::App(callee, args) = e {
        if let LExp::Var(f) = callee.as_ref() {
            if let Some(&k) = ok.get(f) {
                if args.len() == 1 {
                    for a in args.iter_mut() {
                        rewrite(a, ok, vars);
                    }
                    let arg = args.pop().unwrap();
                    match arg {
                        LExp::Record(es) if es.len() == k => {
                            *args = es;
                        }
                        other => {
                            let t = vars.fresh("flatarg");
                            *args = (0..k)
                                .map(|i| LExp::Select {
                                    i,
                                    arity: k,
                                    tup: Box::new(LExp::Var(t)),
                                })
                                .collect();
                            let inner = std::mem::replace(e, LExp::Unit);
                            *e = LExp::Let {
                                var: t,
                                ty: LTy::TyVar(u32::MAX),
                                rhs: Box::new(other),
                                body: Box::new(inner),
                            };
                        }
                    }
                    return;
                }
            }
        }
    }
    for_each_child_mut(e, |c| rewrite(c, ok, vars));
    match e {
        LExp::Fix { funs, .. } => {
            for f in funs.iter_mut() {
                let Some(&k) = ok.get(&f.var) else { continue };
                let p = f.params[0].0;
                let tys = match &f.params[0].1 {
                    LTy::Tuple(ts) => ts.clone(),
                    _ => vec![LTy::TyVar(u32::MAX); k],
                };
                let comps: Vec<VarId> = (0..k)
                    .map(|i| {
                        let name = format!("{}.{i}", vars.name(p));
                        vars.fresh(&name)
                    })
                    .collect();
                subst_selects(&mut f.body, p, &comps);
                f.params = comps.into_iter().zip(tys).collect();
            }
        }
        // Escaping use as a value: eta-wrap to restore the tupled view.
        LExp::Var(f) => {
            if let Some(&k) = ok.get(f) {
                let fv = *f;
                let q = vars.fresh("eta");
                let args = (0..k)
                    .map(|i| LExp::Select {
                        i,
                        arity: k,
                        tup: Box::new(LExp::Var(q)),
                    })
                    .collect();
                *e = LExp::Fn {
                    params: vec![(q, LTy::TyVar(u32::MAX))],
                    ret: LTy::TyVar(u32::MAX),
                    body: Box::new(LExp::App(Box::new(LExp::Var(fv)), args)),
                };
            }
        }
        _ => {}
    }
}

fn subst_selects(e: &mut LExp, p: VarId, comps: &[VarId]) {
    if let LExp::Select { i, tup, .. } = e {
        if matches!(tup.as_ref(), LExp::Var(v) if *v == p) {
            *e = LExp::Var(comps[*i]);
            return;
        }
    }
    for_each_child_mut(e, |c| subst_selects(c, p, comps));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{FixFun, Prim, VarTable};
    use crate::ty::{DataEnv, ExnEnv};

    #[test]
    fn flattens_tupled_loop() {
        let mut vars = VarTable::new();
        let f = vars.fresh("loop");
        let p = vars.fresh("p");
        let pty = LTy::Tuple(vec![LTy::Int, LTy::Int]);
        // loop p = loop (#0 p - 1, #1 p)
        let body = LExp::App(
            Box::new(LExp::Var(f)),
            vec![LExp::Record(vec![
                LExp::Prim(
                    Prim::ISub,
                    vec![
                        LExp::Select {
                            i: 0,
                            arity: 2,
                            tup: Box::new(LExp::Var(p)),
                        },
                        LExp::Int(1),
                    ],
                ),
                LExp::Select {
                    i: 1,
                    arity: 2,
                    tup: Box::new(LExp::Var(p)),
                },
            ])],
        );
        let mut prog = LProgram {
            data: DataEnv::new(),
            exns: ExnEnv::new(),
            vars,
            body: LExp::Fix {
                funs: vec![FixFun {
                    var: f,
                    params: vec![(p, pty)],
                    ret: LTy::Int,
                    body,
                }],
                body: Box::new(LExp::App(
                    Box::new(LExp::Var(f)),
                    vec![LExp::Record(vec![LExp::Int(10), LExp::Int(0)])],
                )),
            },
            result_ty: LTy::Int,
        };
        assert_eq!(flatten(&mut prog), 1);
        // The function now has two parameters and no Record argument.
        let LExp::Fix { funs, body } = &prog.body else {
            panic!()
        };
        assert_eq!(funs[0].params.len(), 2);
        let LExp::App(_, args) = body.as_ref() else {
            panic!()
        };
        assert_eq!(args.len(), 2);
        fn no_records(e: &LExp) -> bool {
            let mut ok = !matches!(e, LExp::Record(_));
            e.for_each_child(|c| ok &= no_records(c));
            ok
        }
        assert!(
            no_records(&funs[0].body),
            "recursive call must be flattened"
        );
    }

    #[test]
    fn escaping_use_is_eta_wrapped() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let p = vars.fresh("p");
        let pty = LTy::Tuple(vec![LTy::Int, LTy::Int]);
        let mut prog = LProgram {
            data: DataEnv::new(),
            exns: ExnEnv::new(),
            vars,
            body: LExp::Fix {
                funs: vec![FixFun {
                    var: f,
                    params: vec![(p, pty)],
                    ret: LTy::Int,
                    body: LExp::Select {
                        i: 0,
                        arity: 2,
                        tup: Box::new(LExp::Var(p)),
                    },
                }],
                body: Box::new(LExp::Var(f)), // escapes
            },
            result_ty: LTy::Int,
        };
        assert_eq!(flatten(&mut prog), 1);
        let LExp::Fix { body, .. } = &prog.body else {
            panic!()
        };
        assert!(matches!(body.as_ref(), LExp::Fn { .. }), "{body:?}");
    }

    #[test]
    fn param_used_whole_blocks_flattening() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let p = vars.fresh("p");
        let pty = LTy::Tuple(vec![LTy::Int, LTy::Int]);
        let mut prog = LProgram {
            data: DataEnv::new(),
            exns: ExnEnv::new(),
            vars,
            body: LExp::Fix {
                funs: vec![FixFun {
                    var: f,
                    params: vec![(p, pty)],
                    ret: LTy::Tuple(vec![LTy::Int, LTy::Int]),
                    body: LExp::Var(p), // returns the whole tuple
                }],
                body: Box::new(LExp::Int(0)),
            },
            result_ty: LTy::Int,
        };
        assert_eq!(flatten(&mut prog), 0);
    }
}
