//! The `LambdaExp` optimizer (paper §3, "Optimization").
//!
//! The ML Kit optimizer "rewrites LambdaExp fragments as long as it can
//! guarantee that the resulting fragments run in less space than the
//! original fragments". We implement the same contraction-style passes:
//!
//! * constant folding and branch simplification ([`simplify`]),
//! * dead-binding elimination and atomic-value propagation,
//! * beta reduction and inlining of functions used exactly once or whose
//!   bodies are small ([`inline`]).
//!
//! Passes run to a (bounded) fixpoint. All passes preserve the uniqueness
//! of [`VarId`]s, which the region-inference phase relies on.
//!
//! [`VarId`]: crate::exp::VarId

pub mod flatten;
pub mod inline;
pub mod simplify;

use crate::exp::LProgram;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptOptions {
    /// Maximum number of contract/inline rounds.
    pub max_rounds: usize,
    /// Maximum body size (AST nodes) for multi-use inlining.
    pub inline_size: usize,
    /// Master switch; when false, `optimize` is the identity.
    pub enabled: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            max_rounds: 4,
            inline_size: 40,
            enabled: true,
        }
    }
}

/// Statistics reported by one optimizer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Number of contraction rewrites applied.
    pub rewrites: usize,
    /// Number of functions inlined.
    pub inlined: usize,
    /// Number of functions whose tuple argument was flattened.
    pub flattened: usize,
    /// Rounds executed.
    pub rounds: usize,
}

/// Optimizes `prog` in place and reports statistics.
pub fn optimize(prog: &mut LProgram, opts: &OptOptions) -> OptStats {
    let mut stats = OptStats::default();
    if !opts.enabled {
        return stats;
    }
    for _ in 0..opts.max_rounds {
        stats.rounds += 1;
        let r1 = simplify::simplify(&mut prog.body);
        let r2 = inline::inline(prog, opts.inline_size);
        stats.rewrites += r1;
        stats.inlined += r2;
        if r1 + r2 == 0 {
            break;
        }
    }
    // Argument flattening last (its output shapes are final), followed by
    // one contraction round to clean up the projections it introduced.
    stats.flattened = flatten::flatten(prog);
    if stats.flattened > 0 {
        stats.rewrites += simplify::simplify(&mut prog.body);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{LExp, Prim, VarTable};
    use crate::ty::{DataEnv, ExnEnv, LTy};

    fn prog(body: LExp, vars: VarTable) -> LProgram {
        LProgram {
            data: DataEnv::new(),
            exns: ExnEnv::new(),
            vars,
            body,
            result_ty: LTy::Int,
        }
    }

    #[test]
    fn optimizer_reaches_fixpoint() {
        let mut vars = VarTable::new();
        let x = vars.fresh("x");
        // let x = 1 + 2 in x * 1  ==>  3 (after folding + propagation)
        let body = LExp::Let {
            var: x,
            ty: LTy::Int,
            rhs: Box::new(LExp::Prim(Prim::IAdd, vec![LExp::Int(1), LExp::Int(2)])),
            body: Box::new(LExp::Prim(Prim::IMul, vec![LExp::Var(x), LExp::Int(1)])),
        };
        let mut p = prog(body, vars);
        let stats = optimize(&mut p, &OptOptions::default());
        assert!(stats.rewrites > 0);
        assert_eq!(p.body, LExp::Int(3));
    }

    #[test]
    fn disabled_optimizer_is_identity() {
        let mut vars = VarTable::new();
        let _ = vars.fresh("x");
        let body = LExp::Prim(Prim::IAdd, vec![LExp::Int(1), LExp::Int(2)]);
        let mut p = prog(body.clone(), vars);
        optimize(
            &mut p,
            &OptOptions {
                enabled: false,
                ..Default::default()
            },
        );
        assert_eq!(p.body, body);
    }
}
