//! Contraction rewrites: constant folding, branch simplification,
//! atomic-value propagation and dead-binding elimination.

use crate::exp::{LExp, Prim, VarId};

/// Simplifies `e` bottom-up; returns the number of rewrites applied.
pub fn simplify(e: &mut LExp) -> usize {
    let mut n = 0;
    simplify_exp(e, &mut n);
    n
}

/// `true` if evaluating `e` can have no effect (no I/O, no mutation, no
/// exception, no divergence). Allocation is not an observable effect at
/// this level — the ML Kit optimizer runs before region inference and only
/// ever *reduces* allocation.
pub fn is_pure(e: &LExp) -> bool {
    match e {
        LExp::Var(_)
        | LExp::Int(_)
        | LExp::Real(_)
        | LExp::Str(_)
        | LExp::Bool(_)
        | LExp::Unit
        | LExp::Fn { .. } => true,
        LExp::Record(es) => es.iter().all(is_pure),
        LExp::Select { tup: e, .. } | LExp::DeCon { scrut: e, .. } => is_pure(e),
        LExp::Con { arg, .. } | LExp::ExCon { arg, .. } => {
            arg.as_deref().map(is_pure).unwrap_or(true)
        }
        LExp::Prim(p, args) => prim_is_pure(*p) && args.iter().all(is_pure),
        LExp::If(c, t, f) => is_pure(c) && is_pure(t) && is_pure(f),
        LExp::Let { rhs, body, .. } => is_pure(rhs) && is_pure(body),
        _ => false,
    }
}

/// Primitives that cannot raise, do no I/O and do not mutate.
fn prim_is_pure(p: Prim) -> bool {
    use Prim::*;
    matches!(
        p,
        ILt | ILe
            | IGt
            | IGe
            | IEq
            | RLt
            | RLe
            | RGt
            | RGe
            | REq
            | RAdd
            | RSub
            | RMul
            | RDiv
            | RNeg
            | RAbs
            | IntToReal
            | Sqrt
            | Sin
            | Cos
            | Atan
            | Ln
            | Exp
            | StrEq
            | StrLt
            | StrSize
            | StrConcat
            | ItoS
            | RtoS
            | ArrLen
            | ArrEq
    )
}

/// `true` if `e` is cheap enough to duplicate at each use site.
/// Real literals are excluded: duplicating one duplicates its allocation.
fn is_atomic(e: &LExp) -> bool {
    matches!(
        e,
        LExp::Var(_) | LExp::Int(_) | LExp::Bool(_) | LExp::Unit | LExp::Str(_)
    )
}

fn count_uses(e: &LExp, v: VarId) -> usize {
    match e {
        LExp::Var(w) => usize::from(*w == v),
        _ => {
            let mut n = 0;
            e.for_each_child(|c| n += count_uses(c, v));
            n
        }
    }
}

/// Substitutes `value` for every free occurrence of `v` in `e`.
///
/// `value` must be atomic (binder-free), so no capture can occur given the
/// global uniqueness of variable ids.
pub fn subst_atomic(e: &mut LExp, v: VarId, value: &LExp) {
    if let LExp::Var(w) = e {
        if *w == v {
            *e = value.clone();
        }
        return;
    }
    for_each_child_mut(e, |c| subst_atomic(c, v, value));
}

/// Mutable version of [`LExp::for_each_child`].
pub fn for_each_child_mut(e: &mut LExp, mut f: impl FnMut(&mut LExp)) {
    match e {
        LExp::Var(_) | LExp::Int(_) | LExp::Real(_) | LExp::Str(_) | LExp::Bool(_) | LExp::Unit => {
        }
        LExp::Prim(_, args) => args.iter_mut().for_each(&mut f),
        LExp::Record(es) => es.iter_mut().for_each(&mut f),
        LExp::Select { tup: e, .. } => f(e),
        LExp::Con { arg, .. } | LExp::ExCon { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        LExp::DeCon { scrut, .. } | LExp::DeExn { scrut, .. } => f(scrut),
        LExp::SwitchCon {
            scrut,
            arms,
            default,
            ..
        } => {
            f(scrut);
            arms.iter_mut().for_each(|(_, a)| f(a));
            if let Some(d) = default {
                f(d);
            }
        }
        LExp::SwitchInt {
            scrut,
            arms,
            default,
        } => {
            f(scrut);
            arms.iter_mut().for_each(|(_, a)| f(a));
            f(default);
        }
        LExp::SwitchStr {
            scrut,
            arms,
            default,
        } => {
            f(scrut);
            arms.iter_mut().for_each(|(_, a)| f(a));
            f(default);
        }
        LExp::Fn { body, .. } => f(body),
        LExp::App(g, args) => {
            f(g);
            args.iter_mut().for_each(&mut f);
        }
        LExp::Let { rhs, body, .. } => {
            f(rhs);
            f(body);
        }
        LExp::Fix { funs, body } => {
            funs.iter_mut().for_each(|fun| f(&mut fun.body));
            f(body);
        }
        LExp::If(c, t, e2) => {
            f(c);
            f(t);
            f(e2);
        }
        LExp::SwitchExn {
            scrut,
            arms,
            default,
        } => {
            f(scrut);
            arms.iter_mut().for_each(|(_, a)| f(a));
            f(default);
        }
        LExp::Raise { exp, .. } => f(exp),
        LExp::Handle { body, handler, .. } => {
            f(body);
            f(handler);
        }
    }
}

fn take(e: &mut LExp) -> LExp {
    std::mem::replace(e, LExp::Unit)
}

fn simplify_exp(e: &mut LExp, n: &mut usize) {
    loop {
        for_each_child_mut(e, |c| simplify_exp(c, n));
        let before = *n;
        rewrite_node(e, n);
        if *n == before {
            return;
        }
        // A rewrite may expose new redexes (e.g. beta reduction produces
        // fresh `let`s); re-simplify the node until it is stable. Each
        // rewrite eliminates a binder or a primitive node, so this loop
        // terminates.
    }
}

fn rewrite_node(e: &mut LExp, n: &mut usize) {
    // Try a rewrite at this node.
    match e {
        LExp::Prim(p, args) => {
            if let Some(folded) = fold_prim(*p, args) {
                *e = folded;
                *n += 1;
            }
        }
        LExp::If(c, t, f) => match c.as_ref() {
            LExp::Bool(true) => {
                *e = take(t);
                *n += 1;
            }
            LExp::Bool(false) => {
                *e = take(f);
                *n += 1;
            }
            _ => {
                if matches!(
                    (t.as_ref(), f.as_ref()),
                    (LExp::Bool(true), LExp::Bool(false))
                ) {
                    *e = take(c);
                    *n += 1;
                }
            }
        },
        LExp::Select { i, tup: r, .. } => {
            if let LExp::Record(es) = r.as_mut() {
                if es.iter().all(is_pure) {
                    let v = take(&mut es[*i]);
                    *e = v;
                    *n += 1;
                }
            }
        }
        LExp::DeCon { scrut, con, .. } => {
            if let LExp::Con {
                con: c2,
                arg: Some(a),
                ..
            } = scrut.as_mut()
            {
                if c2 == con {
                    *e = take(a);
                    *n += 1;
                }
            }
        }
        LExp::SwitchInt {
            scrut,
            arms,
            default,
        } => {
            let key = match scrut.as_ref() {
                LExp::Int(k) => Some(*k),
                LExp::Bool(b) => Some(*b as i64),
                _ => None,
            };
            if let Some(k) = key {
                let arm = arms
                    .iter_mut()
                    .find(|(c, _)| *c == k)
                    .map(|(_, a)| take(a))
                    .unwrap_or_else(|| take(default));
                *e = arm;
                *n += 1;
            }
        }
        LExp::SwitchCon {
            scrut,
            arms,
            default,
            ..
        } => {
            if let LExp::Con { con, arg: None, .. } = scrut.as_ref() {
                let con = *con;
                if let Some(arm) = arms.iter_mut().find(|(c, _)| *c == con) {
                    *e = take(&mut arm.1);
                    *n += 1;
                } else if let Some(d) = default {
                    *e = take(d);
                    *n += 1;
                }
            }
        }
        LExp::Let { var, rhs, body, .. } => {
            if is_atomic(rhs) {
                let value = take(rhs);
                let mut b = take(body);
                subst_atomic(&mut b, *var, &value);
                *e = b;
                *n += 1;
            } else if is_pure(rhs) && count_uses(body, *var) == 0 {
                *e = take(body);
                *n += 1;
            }
        }
        LExp::App(f, args) => {
            if let LExp::Fn { params, .. } = f.as_ref() {
                if params.len() == args.len() {
                    let LExp::Fn { params, body, .. } = take(f.as_mut()) else {
                        unreachable!()
                    };
                    let args = std::mem::take(args);
                    let mut result = *body;
                    // Bind right-to-left so evaluation order is preserved by
                    // the nested lets (leftmost binds outermost).
                    for ((v, t), a) in params.into_iter().zip(args).rev() {
                        result = LExp::Let {
                            var: v,
                            ty: t,
                            rhs: Box::new(a),
                            body: Box::new(result),
                        };
                    }
                    *e = result;
                    *n += 1;
                }
            }
        }
        _ => {}
    }
}

fn fold_prim(p: Prim, args: &[LExp]) -> Option<LExp> {
    use Prim::*;
    let int = |e: &LExp| match e {
        LExp::Int(n) => Some(*n),
        _ => None,
    };
    let real = |e: &LExp| match e {
        LExp::Real(r) => Some(*r),
        _ => None,
    };
    match p {
        IAdd | ISub | IMul => {
            let (a, b) = (int(&args[0])?, int(&args[1])?);
            let v = match p {
                IAdd => a.checked_add(b),
                ISub => a.checked_sub(b),
                _ => a.checked_mul(b),
            }
            .filter(|v| crate::eval::int_in_range(*v))?;
            Some(LExp::Int(v))
        }
        IDiv | IMod => {
            let (a, b) = (int(&args[0])?, int(&args[1])?);
            if b == 0 {
                return None; // keep the raising expression
            }
            let q = a.wrapping_div(b);
            let r = a.wrapping_rem(b);
            let floor_q = if r != 0 && (r < 0) != (b < 0) {
                q - 1
            } else {
                q
            };
            let floor_r = if r != 0 && (r < 0) != (b < 0) {
                r + b
            } else {
                r
            };
            Some(LExp::Int(if p == IDiv { floor_q } else { floor_r }))
        }
        INeg => int(&args[0])?
            .checked_neg()
            .filter(|v| crate::eval::int_in_range(*v))
            .map(LExp::Int),
        IAbs => int(&args[0])?
            .checked_abs()
            .filter(|v| crate::eval::int_in_range(*v))
            .map(LExp::Int),
        ILt | ILe | IGt | IGe | IEq => {
            let (a, b) = (int(&args[0])?, int(&args[1])?);
            Some(LExp::Bool(match p {
                ILt => a < b,
                ILe => a <= b,
                IGt => a > b,
                IGe => a >= b,
                _ => a == b,
            }))
        }
        RAdd | RSub | RMul | RDiv => {
            let (a, b) = (real(&args[0])?, real(&args[1])?);
            Some(LExp::Real(match p {
                RAdd => a + b,
                RSub => a - b,
                RMul => a * b,
                _ => a / b,
            }))
        }
        RLt | RLe | RGt | RGe | REq => {
            let (a, b) = (real(&args[0])?, real(&args[1])?);
            Some(LExp::Bool(match p {
                RLt => a < b,
                RLe => a <= b,
                RGt => a > b,
                RGe => a >= b,
                _ => a == b,
            }))
        }
        IntToReal => Some(LExp::Real(int(&args[0])? as f64)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::VarTable;
    use crate::ty::LTy;

    #[test]
    fn folds_arithmetic() {
        let mut e = LExp::Prim(Prim::IMul, vec![LExp::Int(6), LExp::Int(7)]);
        assert_eq!(simplify(&mut e), 1);
        assert_eq!(e, LExp::Int(42));
    }

    #[test]
    fn keeps_division_by_zero() {
        let mut e = LExp::Prim(Prim::IDiv, vec![LExp::Int(1), LExp::Int(0)]);
        assert_eq!(simplify(&mut e), 0);
    }

    #[test]
    fn keeps_overflowing_multiplication() {
        let mut e = LExp::Prim(Prim::IMul, vec![LExp::Int(i64::MAX), LExp::Int(2)]);
        assert_eq!(simplify(&mut e), 0);
    }

    #[test]
    fn folds_sml_div_semantics() {
        let mut e = LExp::Prim(Prim::IDiv, vec![LExp::Int(7), LExp::Int(-2)]);
        simplify(&mut e);
        assert_eq!(e, LExp::Int(-4));
        let mut e = LExp::Prim(Prim::IMod, vec![LExp::Int(7), LExp::Int(-2)]);
        simplify(&mut e);
        assert_eq!(e, LExp::Int(-1));
    }

    #[test]
    fn simplifies_branches() {
        let mut e = LExp::If(
            Box::new(LExp::Bool(true)),
            Box::new(LExp::Int(1)),
            Box::new(LExp::Int(2)),
        );
        simplify(&mut e);
        assert_eq!(e, LExp::Int(1));
    }

    #[test]
    fn select_of_record() {
        let mut e = LExp::Select {
            i: 1,
            arity: 2,
            tup: Box::new(LExp::Record(vec![LExp::Int(1), LExp::Int(2)])),
        };
        simplify(&mut e);
        assert_eq!(e, LExp::Int(2));
    }

    #[test]
    fn select_of_impure_record_kept() {
        let pr = LExp::Prim(Prim::Print, vec![LExp::Str("x".into())]);
        let mut e = LExp::Select {
            i: 0,
            arity: 2,
            tup: Box::new(LExp::Record(vec![LExp::Int(1), pr])),
        };
        simplify(&mut e);
        assert!(matches!(e, LExp::Select { .. }));
    }

    #[test]
    fn dead_let_removed_only_if_pure() {
        let mut vars = VarTable::new();
        let x = vars.fresh("x");
        let mut e = LExp::Let {
            var: x,
            ty: LTy::Int,
            rhs: Box::new(LExp::Prim(Prim::ILt, vec![LExp::Int(1), LExp::Int(2)])),
            body: Box::new(LExp::Int(0)),
        };
        simplify(&mut e);
        assert_eq!(e, LExp::Int(0));

        let y = vars.fresh("y");
        let mut e = LExp::Let {
            var: y,
            ty: LTy::Unit,
            rhs: Box::new(LExp::Prim(Prim::Print, vec![LExp::Str("x".into())])),
            body: Box::new(LExp::Int(0)),
        };
        simplify(&mut e);
        assert!(matches!(e, LExp::Let { .. }));
    }

    #[test]
    fn beta_reduces_preserving_order() {
        let mut vars = VarTable::new();
        let a = vars.fresh("a");
        let b = vars.fresh("b");
        let mut e = LExp::App(
            Box::new(LExp::Fn {
                params: vec![(a, LTy::Int), (b, LTy::Int)],
                ret: LTy::Int,
                body: Box::new(LExp::Prim(Prim::ISub, vec![LExp::Var(a), LExp::Var(b)])),
            }),
            vec![LExp::Int(10), LExp::Int(4)],
        );
        simplify(&mut e);
        // After beta + propagation of atomic ints + folding: 6.
        simplify(&mut e);
        assert_eq!(e, LExp::Int(6));
    }
}
