//! Pretty printer for `LambdaExp`, used in `--dump-lambda` style debugging
//! and golden tests.

use crate::exp::{LExp, LProgram, VarId, VarTable};
use std::fmt::Write as _;

/// Renders a program body with resolved variable names.
pub fn program_to_string(p: &LProgram) -> String {
    let mut out = String::new();
    let mut pr = Printer {
        vars: &p.vars,
        out: &mut out,
        indent: 0,
    };
    pr.exp(&p.body);
    out
}

/// Renders one expression with variable names from `vars`.
pub fn exp_to_string(e: &LExp, vars: &VarTable) -> String {
    let mut out = String::new();
    let mut pr = Printer {
        vars,
        out: &mut out,
        indent: 0,
    };
    pr.exp(e);
    out
}

struct Printer<'a> {
    vars: &'a VarTable,
    out: &'a mut String,
    indent: usize,
}

impl Printer<'_> {
    fn nl(&mut self) {
        let _ = write!(self.out, "\n{}", "  ".repeat(self.indent));
    }

    fn var(&mut self, v: VarId) {
        let _ = write!(self.out, "{}_{}", self.vars.name(v), v.0);
    }

    fn exp(&mut self, e: &LExp) {
        match e {
            LExp::Var(v) => self.var(*v),
            LExp::Int(n) => {
                let _ = write!(self.out, "{n}");
            }
            LExp::Real(r) => {
                let _ = write!(self.out, "{r}");
            }
            LExp::Str(s) => {
                let _ = write!(self.out, "{s:?}");
            }
            LExp::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            LExp::Unit => self.out.push_str("()"),
            LExp::Prim(p, args) => {
                let _ = write!(self.out, "{p:?}(");
                self.list(args);
                self.out.push(')');
            }
            LExp::Record(es) => {
                self.out.push('(');
                self.list(es);
                self.out.push(')');
            }
            LExp::Select { i, tup: e, .. } => {
                let _ = write!(self.out, "#{i} ");
                self.exp(e);
            }
            LExp::Con {
                tycon, con, arg, ..
            } => {
                let _ = write!(self.out, "C{}#{}", tycon.0, con.0);
                if let Some(a) = arg {
                    self.out.push('(');
                    self.exp(a);
                    self.out.push(')');
                }
            }
            LExp::DeCon { scrut, .. } => {
                self.out.push_str("decon ");
                self.exp(scrut);
            }
            LExp::SwitchCon {
                scrut,
                arms,
                default,
                ..
            } => {
                self.out.push_str("case ");
                self.exp(scrut);
                self.indent += 1;
                for (c, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| #{} => ", c.0);
                    self.exp(a);
                }
                if let Some(d) = default {
                    self.nl();
                    self.out.push_str("| _ => ");
                    self.exp(d);
                }
                self.indent -= 1;
            }
            LExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                self.out.push_str("caseint ");
                self.exp(scrut);
                self.indent += 1;
                for (k, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| {k} => ");
                    self.exp(a);
                }
                self.nl();
                self.out.push_str("| _ => ");
                self.exp(default);
                self.indent -= 1;
            }
            LExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                self.out.push_str("casestr ");
                self.exp(scrut);
                self.indent += 1;
                for (k, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| {k:?} => ");
                    self.exp(a);
                }
                self.nl();
                self.out.push_str("| _ => ");
                self.exp(default);
                self.indent -= 1;
            }
            LExp::Fn { params, body, .. } => {
                self.out.push_str("fn (");
                for (i, (v, t)) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.var(*v);
                    let _ = write!(self.out, ": {t}");
                }
                self.out.push_str(") => ");
                self.exp(body);
            }
            LExp::App(f, args) => {
                self.out.push('[');
                self.exp(f);
                self.out.push_str("](");
                self.list(args);
                self.out.push(')');
            }
            LExp::Let { var, ty, rhs, body } => {
                self.out.push_str("let ");
                self.var(*var);
                let _ = write!(self.out, ": {ty} = ");
                self.exp(rhs);
                self.nl();
                self.out.push_str("in ");
                self.exp(body);
            }
            LExp::Fix { funs, body } => {
                for (i, f) in funs.iter().enumerate() {
                    self.out.push_str(if i == 0 { "fix " } else { "and " });
                    self.var(f.var);
                    self.out.push('(');
                    for (j, (v, t)) in f.params.iter().enumerate() {
                        if j > 0 {
                            self.out.push_str(", ");
                        }
                        self.var(*v);
                        let _ = write!(self.out, ": {t}");
                    }
                    let _ = write!(self.out, "): {} = ", f.ret);
                    self.indent += 1;
                    self.nl();
                    self.exp(&f.body);
                    self.indent -= 1;
                    self.nl();
                }
                self.out.push_str("in ");
                self.exp(body);
            }
            LExp::If(c, t, f) => {
                self.out.push_str("if ");
                self.exp(c);
                self.out.push_str(" then ");
                self.exp(t);
                self.out.push_str(" else ");
                self.exp(f);
            }
            LExp::ExCon { exn, arg } => {
                let _ = write!(self.out, "exn#{}", exn.0);
                if let Some(a) = arg {
                    self.out.push('(');
                    self.exp(a);
                    self.out.push(')');
                }
            }
            LExp::DeExn { scrut, .. } => {
                self.out.push_str("deexn ");
                self.exp(scrut);
            }
            LExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                self.out.push_str("caseexn ");
                self.exp(scrut);
                self.indent += 1;
                for (k, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| exn#{} => ", k.0);
                    self.exp(a);
                }
                self.nl();
                self.out.push_str("| _ => ");
                self.exp(default);
                self.indent -= 1;
            }
            LExp::Raise { exp, .. } => {
                self.out.push_str("raise ");
                self.exp(exp);
            }
            LExp::Handle { body, var, handler } => {
                self.out.push('(');
                self.exp(body);
                self.out.push_str(") handle ");
                self.var(*var);
                self.out.push_str(" => ");
                self.exp(handler);
            }
        }
    }

    fn list(&mut self, es: &[LExp]) {
        for (i, e) in es.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.exp(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{Prim, VarTable};

    #[test]
    fn renders_let_and_prim() {
        let mut vars = VarTable::new();
        let x = vars.fresh("x");
        let e = LExp::Let {
            var: x,
            ty: crate::ty::LTy::Int,
            rhs: Box::new(LExp::Int(1)),
            body: Box::new(LExp::Prim(Prim::IAdd, vec![LExp::Var(x), LExp::Int(2)])),
        };
        let s = exp_to_string(&e, &vars);
        assert!(s.contains("let x_0: int = 1"), "{s}");
        assert!(s.contains("IAdd(x_0, 2)"), "{s}");
    }
}
