//! Monomorphic types, datatype environments and exception environments for
//! `LambdaExp`.

use std::fmt;

/// Identifier of a datatype (index into [`DataEnv`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyConId(pub u32);

/// Identifier of a value constructor within its datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConId(pub u32);

/// Identifier of an exception constructor (index into [`ExnEnv`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExnId(pub u32);

/// A monomorphic `LambdaExp` type.
///
/// Type variables do not appear after elaboration: polymorphic bindings are
/// specialized per ground instantiation and unconstrained variables default
/// to `Int` (mirroring SML's overloading defaults).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LTy {
    /// An erased type variable. Polymorphic functions are compiled once
    /// (as in the ML Kit); values of variable type are handled uniformly
    /// and no allocation ever happens *at* a variable type, so region
    /// inference and the garbage collector never need its structure.
    TyVar(u32),
    /// Unboxed machine integer (also used for characters and booleans'
    /// runtime representation; `Bool` is kept distinct for checking).
    Int,
    /// Boolean.
    Bool,
    /// Unit.
    Unit,
    /// Boxed 64-bit float (allocated in a region).
    Real,
    /// Immutable string (a large object, paper §3.1).
    Str,
    /// Applied datatype, e.g. `int list`.
    Con(TyConId, Vec<LTy>),
    /// Function type.
    Arrow(Box<LTy>, Box<LTy>),
    /// Tuple type (arity >= 2; unit is `Unit`).
    Tuple(Vec<LTy>),
    /// Mutable reference cell.
    Ref(Box<LTy>),
    /// Mutable array (a large object).
    Array(Box<LTy>),
    /// Exception value.
    Exn,
}

impl LTy {
    /// `true` if values of this type are unboxed scalars at runtime (never
    /// live in a region and are ignored by the garbage collector).
    pub fn is_unboxed(&self) -> bool {
        matches!(self, LTy::Int | LTy::Bool | LTy::Unit)
    }

    /// Convenience constructor for `t1 -> t2`.
    pub fn arrow(a: LTy, b: LTy) -> LTy {
        LTy::Arrow(Box::new(a), Box::new(b))
    }
}

impl fmt::Display for LTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LTy::TyVar(n) => write!(f, "'a{n}"),
            LTy::Int => write!(f, "int"),
            LTy::Bool => write!(f, "bool"),
            LTy::Unit => write!(f, "unit"),
            LTy::Real => write!(f, "real"),
            LTy::Str => write!(f, "string"),
            LTy::Con(tc, args) => {
                if args.is_empty() {
                    write!(f, "t{}", tc.0)
                } else {
                    let inner: Vec<String> = args.iter().map(|t| t.to_string()).collect();
                    write!(f, "({}) t{}", inner.join(", "), tc.0)
                }
            }
            LTy::Arrow(a, b) => write!(f, "({a} -> {b})"),
            LTy::Tuple(ts) => {
                let inner: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
                write!(f, "({})", inner.join(" * "))
            }
            LTy::Ref(t) => write!(f, "{t} ref"),
            LTy::Array(t) => write!(f, "{t} array"),
            LTy::Exn => write!(f, "exn"),
        }
    }
}

/// One value constructor of a datatype.
#[derive(Debug, Clone, PartialEq)]
pub struct Constructor {
    /// Source name, for diagnostics and printing.
    pub name: String,
    /// Argument type in terms of the datatype's formal type parameters,
    /// encoded as [`SchemeTy::Param`] indices below [`Datatype::arity`].
    pub arg: Option<SchemeTy>,
}

/// A type possibly mentioning the enclosing datatype's formal parameters.
///
/// Formal parameter `i` is represented as [`SchemeTy::Param`]`(i)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SchemeTy {
    /// The `i`-th formal type parameter of the enclosing datatype.
    Param(u32),
    /// Ground/applied type.
    Int,
    /// Boolean.
    Bool,
    /// Unit.
    Unit,
    /// Real.
    Real,
    /// String.
    Str,
    /// Applied datatype.
    Con(TyConId, Vec<SchemeTy>),
    /// Function.
    Arrow(Box<SchemeTy>, Box<SchemeTy>),
    /// Tuple.
    Tuple(Vec<SchemeTy>),
    /// Reference.
    Ref(Box<SchemeTy>),
    /// Array.
    Array(Box<SchemeTy>),
    /// Exception.
    Exn,
}

impl SchemeTy {
    /// Instantiates the scheme with concrete `args` for the datatype's
    /// formal parameters.
    ///
    /// # Panics
    ///
    /// Panics if a parameter index is out of range of `args`.
    pub fn instantiate(&self, args: &[LTy]) -> LTy {
        match self {
            SchemeTy::Param(i) => args[*i as usize].clone(),
            SchemeTy::Int => LTy::Int,
            SchemeTy::Bool => LTy::Bool,
            SchemeTy::Unit => LTy::Unit,
            SchemeTy::Real => LTy::Real,
            SchemeTy::Str => LTy::Str,
            SchemeTy::Con(tc, ts) => {
                LTy::Con(*tc, ts.iter().map(|t| t.instantiate(args)).collect())
            }
            SchemeTy::Arrow(a, b) => LTy::arrow(a.instantiate(args), b.instantiate(args)),
            SchemeTy::Tuple(ts) => LTy::Tuple(ts.iter().map(|t| t.instantiate(args)).collect()),
            SchemeTy::Ref(t) => LTy::Ref(Box::new(t.instantiate(args))),
            SchemeTy::Array(t) => LTy::Array(Box::new(t.instantiate(args))),
            SchemeTy::Exn => LTy::Exn,
        }
    }
}

/// A datatype declaration in the datatype environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Datatype {
    /// Source name.
    pub name: String,
    /// Number of formal type parameters.
    pub arity: u32,
    /// The value constructors, indexed by [`ConId`].
    pub constructors: Vec<Constructor>,
}

impl Datatype {
    /// Number of constructors that carry an argument (boxed at runtime).
    pub fn boxed_count(&self) -> usize {
        self.constructors.iter().filter(|c| c.arg.is_some()).count()
    }

    /// Number of nullary constructors (unboxed scalars at runtime).
    pub fn nullary_count(&self) -> usize {
        self.constructors.iter().filter(|c| c.arg.is_none()).count()
    }
}

/// The datatype environment of a program.
///
/// `TyConId(0)` is always the built-in `list` datatype with constructors
/// `nil` (`ConId(0)`) and `::` (`ConId(1)`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataEnv {
    datatypes: Vec<Datatype>,
}

/// The [`TyConId`] of the built-in `list` datatype.
pub const LIST: TyConId = TyConId(0);
/// The [`ConId`] of `nil`.
pub const NIL: ConId = ConId(0);
/// The [`ConId`] of `::`.
pub const CONS: ConId = ConId(1);

impl DataEnv {
    /// Creates a datatype environment containing the built-in `list`.
    pub fn new() -> Self {
        let list = Datatype {
            name: "list".to_string(),
            arity: 1,
            constructors: vec![
                Constructor {
                    name: "nil".to_string(),
                    arg: None,
                },
                Constructor {
                    name: "::".to_string(),
                    arg: Some(SchemeTy::Tuple(vec![
                        SchemeTy::Param(0),
                        SchemeTy::Con(LIST, vec![SchemeTy::Param(0)]),
                    ])),
                },
            ],
        };
        DataEnv {
            datatypes: vec![list],
        }
    }

    /// Registers a datatype, returning its id.
    pub fn define(&mut self, dt: Datatype) -> TyConId {
        let id = TyConId(self.datatypes.len() as u32);
        self.datatypes.push(dt);
        id
    }

    /// Reserves a slot for a datatype that will be filled in later
    /// (supporting mutual recursion between datatype bindings).
    pub fn reserve(&mut self, name: &str) -> TyConId {
        self.define(Datatype {
            name: name.to_string(),
            arity: 0,
            constructors: Vec::new(),
        })
    }

    /// Replaces the contents of a reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this environment.
    pub fn fill(&mut self, id: TyConId, dt: Datatype) {
        self.datatypes[id.0 as usize] = dt;
    }

    /// Looks up a datatype.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this environment.
    pub fn get(&self, id: TyConId) -> &Datatype {
        &self.datatypes[id.0 as usize]
    }

    /// Iterates over `(id, datatype)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TyConId, &Datatype)> {
        self.datatypes
            .iter()
            .enumerate()
            .map(|(i, d)| (TyConId(i as u32), d))
    }

    /// The instantiated argument type of constructor `con` of `tycon`
    /// applied to `args`, if the constructor carries a value.
    pub fn con_arg_ty(&self, tycon: TyConId, con: ConId, args: &[LTy]) -> Option<LTy> {
        self.get(tycon).constructors[con.0 as usize]
            .arg
            .as_ref()
            .map(|s| s.instantiate(args))
    }
}

/// One exception constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExnCon {
    /// Source name.
    pub name: String,
    /// Argument type, if the exception carries a value.
    pub arg: Option<LTy>,
}

/// The exception environment of a program.
///
/// The standard exceptions `Div`, `Overflow`, `Subscript`, `Size`, `Match`
/// and `Bind` occupy the first six slots.
#[derive(Debug, Clone, PartialEq)]
pub struct ExnEnv {
    exns: Vec<ExnCon>,
}

/// [`ExnId`] of the `Div` exception.
pub const EXN_DIV: ExnId = ExnId(0);
/// [`ExnId`] of the `Overflow` exception.
pub const EXN_OVERFLOW: ExnId = ExnId(1);
/// [`ExnId`] of the `Subscript` exception.
pub const EXN_SUBSCRIPT: ExnId = ExnId(2);
/// [`ExnId`] of the `Size` exception.
pub const EXN_SIZE: ExnId = ExnId(3);
/// [`ExnId`] of the `Match` exception.
pub const EXN_MATCH: ExnId = ExnId(4);
/// [`ExnId`] of the `Bind` exception.
pub const EXN_BIND: ExnId = ExnId(5);

impl Default for ExnEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl ExnEnv {
    /// Creates an exception environment with the standard exceptions.
    pub fn new() -> Self {
        let std = ["Div", "Overflow", "Subscript", "Size", "Match", "Bind"];
        ExnEnv {
            exns: std
                .iter()
                .map(|n| ExnCon {
                    name: n.to_string(),
                    arg: None,
                })
                .collect(),
        }
    }

    /// Registers an exception constructor, returning its id.
    pub fn define(&mut self, name: &str, arg: Option<LTy>) -> ExnId {
        let id = ExnId(self.exns.len() as u32);
        self.exns.push(ExnCon {
            name: name.to_string(),
            arg,
        });
        id
    }

    /// Looks up an exception constructor.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never issued by this environment.
    pub fn get(&self, id: ExnId) -> &ExnCon {
        &self.exns[id.0 as usize]
    }

    /// Number of registered exception constructors.
    pub fn len(&self) -> usize {
        self.exns.len()
    }

    /// `true` if no exceptions are registered (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.exns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_predefined() {
        let env = DataEnv::new();
        let list = env.get(LIST);
        assert_eq!(list.name, "list");
        assert_eq!(list.constructors.len(), 2);
        assert_eq!(list.boxed_count(), 1);
        assert_eq!(list.nullary_count(), 1);
    }

    #[test]
    fn cons_arg_instantiates() {
        let env = DataEnv::new();
        let arg = env.con_arg_ty(LIST, CONS, &[LTy::Int]).unwrap();
        assert_eq!(
            arg,
            LTy::Tuple(vec![LTy::Int, LTy::Con(LIST, vec![LTy::Int])])
        );
    }

    #[test]
    fn std_exceptions_present() {
        let env = ExnEnv::new();
        assert_eq!(env.get(EXN_DIV).name, "Div");
        assert_eq!(env.get(EXN_MATCH).name, "Match");
        assert_eq!(env.len(), 6);
    }

    #[test]
    fn unboxed_classification() {
        assert!(LTy::Int.is_unboxed());
        assert!(LTy::Bool.is_unboxed());
        assert!(!LTy::Real.is_unboxed());
        assert!(!LTy::Tuple(vec![LTy::Int, LTy::Int]).is_unboxed());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(LTy::arrow(LTy::Int, LTy::Bool).to_string(), "(int -> bool)");
    }
}
