//! The `LambdaExp` expression language.
//!
//! Allocation points are syntactically explicit: [`LExp::Record`],
//! boxed [`LExp::Con`], [`LExp::ExCon`] with argument, [`LExp::Fn`] and
//! [`LExp::Fix`] closures, [`LExp::Real`] and [`LExp::Str`] literals, and
//! the allocating primitives ([`Prim::allocates`]). Region inference
//! (`kit-region`) attaches an `at ρ` annotation to exactly these points.

use crate::ty::{ConId, DataEnv, ExnEnv, ExnId, LTy, TyConId};
use std::collections::BTreeSet;

/// A variable identifier, unique within a program after elaboration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Maps [`VarId`]s to their source names, and issues fresh variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a fresh variable with a display `name`.
    pub fn fresh(&mut self, name: &str) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        id
    }

    /// The display name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not issued by this table.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0 as usize]
    }

    /// Number of variables issued.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no variables were issued.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Primitive operations.
///
/// Integer division and modulus follow SML semantics (rounding toward
/// negative infinity) and raise `Div`; integer arithmetic raises `Overflow`
/// on wrap-around; array and string indexing raise `Subscript`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// `+` on int.
    IAdd,
    /// `-` on int.
    ISub,
    /// `*` on int.
    IMul,
    /// `div` (floor division).
    IDiv,
    /// `mod` (sign follows divisor).
    IMod,
    /// `~` on int.
    INeg,
    /// `abs` on int.
    IAbs,
    /// `<` on int.
    ILt,
    /// `<=` on int.
    ILe,
    /// `>` on int.
    IGt,
    /// `>=` on int.
    IGe,
    /// `=` on int (also used for bool/char/unit).
    IEq,
    /// `+` on real. Allocates the boxed result.
    RAdd,
    /// `-` on real. Allocates.
    RSub,
    /// `*` on real. Allocates.
    RMul,
    /// `/` on real. Allocates.
    RDiv,
    /// `~` on real. Allocates.
    RNeg,
    /// `abs` on real. Allocates.
    RAbs,
    /// `<` on real.
    RLt,
    /// `<=` on real.
    RLe,
    /// `>` on real.
    RGt,
    /// `>=` on real.
    RGe,
    /// `=` on real (paper benchmarks use it; SML97 forbids it, we allow).
    REq,
    /// `real : int -> real`. Allocates.
    IntToReal,
    /// `floor : real -> int`.
    Floor,
    /// `trunc : real -> int`.
    Trunc,
    /// `sqrt`. Allocates.
    Sqrt,
    /// `sin`. Allocates.
    Sin,
    /// `cos`. Allocates.
    Cos,
    /// `atan`. Allocates.
    Atan,
    /// `ln`. Allocates.
    Ln,
    /// `exp`. Allocates.
    Exp,
    /// `=` on strings.
    StrEq,
    /// `<` on strings (lexicographic).
    StrLt,
    /// `^` concatenation. Allocates a large object.
    StrConcat,
    /// `size : string -> int`.
    StrSize,
    /// `strsub : string * int -> int` (code point). Raises `Subscript`.
    StrSub,
    /// `itos : int -> string`. Allocates.
    ItoS,
    /// `rtos : real -> string`. Allocates.
    RtoS,
    /// `chr : int -> string` (single character). Allocates.
    Chr,
    /// `print : string -> unit`.
    Print,
    /// `ref e`. Allocates a one-field box.
    RefNew,
    /// `! e`.
    RefGet,
    /// `r := e`.
    RefSet,
    /// Pointer equality on refs (SML `=` on refs).
    RefEq,
    /// `array (n, init)`. Allocates a large object. Raises `Size` if n < 0.
    ArrNew,
    /// `sub (a, i)`. Raises `Subscript`.
    ArrSub,
    /// `update (a, i, v)`. Raises `Subscript`.
    ArrUpd,
    /// `length a`.
    ArrLen,
    /// Pointer equality on arrays (SML `=` on arrays).
    ArrEq,
}

impl Prim {
    /// `true` if the operation allocates a boxed value (and therefore needs
    /// a region annotation after region inference).
    pub fn allocates(self) -> bool {
        use Prim::*;
        matches!(
            self,
            RAdd | RSub
                | RMul
                | RDiv
                | RNeg
                | RAbs
                | IntToReal
                | Sqrt
                | Sin
                | Cos
                | Atan
                | Ln
                | Exp
                | StrConcat
                | ItoS
                | RtoS
                | Chr
                | RefNew
                | ArrNew
        )
    }
}

/// One function in a recursive [`LExp::Fix`] group.
#[derive(Debug, Clone, PartialEq)]
pub struct FixFun {
    /// The bound function variable.
    pub var: VarId,
    /// Parameters with their types.
    pub params: Vec<(VarId, LTy)>,
    /// Result type.
    pub ret: LTy,
    /// Function body.
    pub body: LExp,
}

/// A `LambdaExp` expression.
#[derive(Debug, Clone, PartialEq)]
pub enum LExp {
    /// Variable reference.
    Var(VarId),
    /// Integer constant (unboxed).
    Int(i64),
    /// Real constant (boxed; allocation point).
    Real(f64),
    /// String constant. Resides in the data segment — constants are never
    /// traversed, updated nor copied by the collector (paper §2.5, case 3).
    Str(String),
    /// Boolean constant (unboxed).
    Bool(bool),
    /// Unit constant (unboxed).
    Unit,
    /// Primitive application.
    Prim(Prim, Vec<LExp>),
    /// Tuple construction (allocation point). Arity >= 2.
    Record(Vec<LExp>),
    /// Tuple projection. `arity` is the tuple's width (needed by region
    /// inference to reconstruct the scrutinee type).
    Select {
        /// Field index.
        i: usize,
        /// Tuple arity.
        arity: usize,
        /// The tuple.
        tup: Box<LExp>,
    },
    /// Datatype constructor application. Nullary constructors are unboxed
    /// scalars; unary ones allocate. `targs` are the datatype's type
    /// arguments at this use.
    Con {
        tycon: TyConId,
        con: ConId,
        targs: Vec<LTy>,
        arg: Option<Box<LExp>>,
    },
    /// Extracts the argument of a constructor value (unchecked; emitted
    /// under a matching [`LExp::SwitchCon`] arm).
    DeCon {
        tycon: TyConId,
        con: ConId,
        scrut: Box<LExp>,
    },
    /// Multi-way branch on a datatype constructor.
    SwitchCon {
        /// The value examined.
        scrut: Box<LExp>,
        /// Its datatype.
        tycon: TyConId,
        /// `(constructor, arm)` pairs.
        arms: Vec<(ConId, LExp)>,
        /// Fallback when no arm matches (`None` if exhaustive).
        default: Option<Box<LExp>>,
    },
    /// Multi-way branch on an integer.
    SwitchInt {
        /// The value examined.
        scrut: Box<LExp>,
        /// `(literal, arm)` pairs.
        arms: Vec<(i64, LExp)>,
        /// Fallback.
        default: Box<LExp>,
    },
    /// Multi-way branch on a string.
    SwitchStr {
        /// The value examined.
        scrut: Box<LExp>,
        /// `(literal, arm)` pairs.
        arms: Vec<(String, LExp)>,
        /// Fallback.
        default: Box<LExp>,
    },
    /// Anonymous function (closure allocation point).
    Fn {
        /// Parameters.
        params: Vec<(VarId, LTy)>,
        /// Result type.
        ret: LTy,
        /// Body.
        body: Box<LExp>,
    },
    /// Application. The callee is evaluated first, then arguments
    /// left-to-right.
    App(Box<LExp>, Vec<LExp>),
    /// Monomorphic, non-recursive binding.
    Let {
        /// Bound variable.
        var: VarId,
        /// Its type.
        ty: LTy,
        /// Bound expression.
        rhs: Box<LExp>,
        /// Scope.
        body: Box<LExp>,
    },
    /// Mutually recursive function bindings (closure allocation points).
    Fix {
        /// The function group.
        funs: Vec<FixFun>,
        /// Scope.
        body: Box<LExp>,
    },
    /// Conditional.
    If(Box<LExp>, Box<LExp>, Box<LExp>),
    /// Exception-constructor application (allocation point if it carries an
    /// argument).
    ExCon {
        /// The exception constructor.
        exn: ExnId,
        /// Carried value.
        arg: Option<Box<LExp>>,
    },
    /// Extracts the argument of an exception value (unchecked).
    DeExn {
        /// Expected constructor.
        exn: ExnId,
        /// The exception value.
        scrut: Box<LExp>,
    },
    /// Branch on an exception constructor; `default` usually re-raises.
    SwitchExn {
        /// The exception value examined.
        scrut: Box<LExp>,
        /// `(constructor, arm)` pairs.
        arms: Vec<(ExnId, LExp)>,
        /// Fallback.
        default: Box<LExp>,
    },
    /// Raises an exception; `ty` is the type the expression would have had.
    Raise {
        /// The exception value.
        exp: Box<LExp>,
        /// Result type of the raise expression.
        ty: LTy,
    },
    /// `body handle var => handler`.
    Handle {
        /// The protected expression.
        body: Box<LExp>,
        /// Variable bound to the raised exception value in `handler`.
        var: VarId,
        /// The handler expression.
        handler: Box<LExp>,
    },
}

impl LExp {
    /// Free variables of the expression.
    pub fn free_vars(&self) -> BTreeSet<VarId> {
        let mut acc = BTreeSet::new();
        self.free_vars_into(&mut acc, &mut Vec::new());
        acc
    }

    fn free_vars_into(&self, acc: &mut BTreeSet<VarId>, bound: &mut Vec<VarId>) {
        match self {
            LExp::Var(v) => {
                if !bound.contains(v) {
                    acc.insert(*v);
                }
            }
            LExp::Int(_) | LExp::Real(_) | LExp::Str(_) | LExp::Bool(_) | LExp::Unit => {}
            LExp::Prim(_, args) => {
                for a in args {
                    a.free_vars_into(acc, bound);
                }
            }
            LExp::Record(es) => {
                for e in es {
                    e.free_vars_into(acc, bound);
                }
            }
            LExp::Select { tup: e, .. } => e.free_vars_into(acc, bound),
            LExp::Con { arg, .. } => {
                if let Some(a) = arg {
                    a.free_vars_into(acc, bound);
                }
            }
            LExp::DeCon { scrut, .. } => scrut.free_vars_into(acc, bound),
            LExp::SwitchCon {
                scrut,
                arms,
                default,
                ..
            } => {
                scrut.free_vars_into(acc, bound);
                for (_, a) in arms {
                    a.free_vars_into(acc, bound);
                }
                if let Some(d) = default {
                    d.free_vars_into(acc, bound);
                }
            }
            LExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                scrut.free_vars_into(acc, bound);
                for (_, a) in arms {
                    a.free_vars_into(acc, bound);
                }
                default.free_vars_into(acc, bound);
            }
            LExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                scrut.free_vars_into(acc, bound);
                for (_, a) in arms {
                    a.free_vars_into(acc, bound);
                }
                default.free_vars_into(acc, bound);
            }
            LExp::Fn { params, body, .. } => {
                let n = bound.len();
                bound.extend(params.iter().map(|(v, _)| *v));
                body.free_vars_into(acc, bound);
                bound.truncate(n);
            }
            LExp::App(f, args) => {
                f.free_vars_into(acc, bound);
                for a in args {
                    a.free_vars_into(acc, bound);
                }
            }
            LExp::Let { var, rhs, body, .. } => {
                rhs.free_vars_into(acc, bound);
                bound.push(*var);
                body.free_vars_into(acc, bound);
                bound.pop();
            }
            LExp::Fix { funs, body } => {
                let n = bound.len();
                bound.extend(funs.iter().map(|f| f.var));
                for f in funs {
                    let m = bound.len();
                    bound.extend(f.params.iter().map(|(v, _)| *v));
                    f.body.free_vars_into(acc, bound);
                    bound.truncate(m);
                }
                body.free_vars_into(acc, bound);
                bound.truncate(n);
            }
            LExp::If(c, t, f) => {
                c.free_vars_into(acc, bound);
                t.free_vars_into(acc, bound);
                f.free_vars_into(acc, bound);
            }
            LExp::ExCon { arg, .. } => {
                if let Some(a) = arg {
                    a.free_vars_into(acc, bound);
                }
            }
            LExp::DeExn { scrut, .. } => scrut.free_vars_into(acc, bound),
            LExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                scrut.free_vars_into(acc, bound);
                for (_, a) in arms {
                    a.free_vars_into(acc, bound);
                }
                default.free_vars_into(acc, bound);
            }
            LExp::Raise { exp, .. } => exp.free_vars_into(acc, bound),
            LExp::Handle { body, var, handler } => {
                body.free_vars_into(acc, bound);
                bound.push(*var);
                handler.free_vars_into(acc, bound);
                bound.pop();
            }
        }
    }

    /// Number of AST nodes; used by the inliner's size heuristic.
    pub fn size(&self) -> usize {
        let mut n = 1;
        self.for_each_child(|c| n += c.size());
        n
    }

    /// Applies `f` to each direct child expression.
    pub fn for_each_child<'a>(&'a self, mut f: impl FnMut(&'a LExp)) {
        match self {
            LExp::Var(_)
            | LExp::Int(_)
            | LExp::Real(_)
            | LExp::Str(_)
            | LExp::Bool(_)
            | LExp::Unit => {}
            LExp::Prim(_, args) => args.iter().for_each(&mut f),
            LExp::Record(es) => es.iter().for_each(&mut f),
            LExp::Select { tup: e, .. } => f(e),
            LExp::Con { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            LExp::DeCon { scrut, .. } => f(scrut),
            LExp::SwitchCon {
                scrut,
                arms,
                default,
                ..
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                if let Some(d) = default {
                    f(d);
                }
            }
            LExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                f(default);
            }
            LExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                f(default);
            }
            LExp::Fn { body, .. } => f(body),
            LExp::App(g, args) => {
                f(g);
                args.iter().for_each(&mut f);
            }
            LExp::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            LExp::Fix { funs, body } => {
                funs.iter().for_each(|fun| f(&fun.body));
                f(body);
            }
            LExp::If(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            LExp::ExCon { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            LExp::DeExn { scrut, .. } => f(scrut),
            LExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                f(default);
            }
            LExp::Raise { exp, .. } => f(exp),
            LExp::Handle { body, handler, .. } => {
                f(body);
                f(handler);
            }
        }
    }
}

/// A complete `LambdaExp` program.
#[derive(Debug, Clone, PartialEq)]
pub struct LProgram {
    /// Datatype environment.
    pub data: DataEnv,
    /// Exception environment.
    pub exns: ExnEnv,
    /// Variable names.
    pub vars: VarTable,
    /// The whole program as one expression; its value is the program result.
    pub body: LExp,
    /// Type of `body`.
    pub result_ty: LTy,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt() -> VarTable {
        VarTable::new()
    }

    #[test]
    fn free_vars_respect_binding() {
        let mut vars = vt();
        let x = vars.fresh("x");
        let y = vars.fresh("y");
        // let x = y in x + x
        let e = LExp::Let {
            var: x,
            ty: LTy::Int,
            rhs: Box::new(LExp::Var(y)),
            body: Box::new(LExp::Prim(Prim::IAdd, vec![LExp::Var(x), LExp::Var(x)])),
        };
        let fv = e.free_vars();
        assert!(fv.contains(&y));
        assert!(!fv.contains(&x));
    }

    #[test]
    fn free_vars_of_fix_exclude_group() {
        let mut vars = vt();
        let f = vars.fresh("f");
        let x = vars.fresh("x");
        let g = vars.fresh("g");
        // fix f(x) = g x in f  — g free, f and x bound
        let e = LExp::Fix {
            funs: vec![FixFun {
                var: f,
                params: vec![(x, LTy::Int)],
                ret: LTy::Int,
                body: LExp::App(Box::new(LExp::Var(g)), vec![LExp::Var(x)]),
            }],
            body: Box::new(LExp::Var(f)),
        };
        let fv = e.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![g]);
    }

    #[test]
    fn handle_binds_exception_var() {
        let mut vars = vt();
        let e_var = vars.fresh("e");
        let e = LExp::Handle {
            body: Box::new(LExp::Int(1)),
            var: e_var,
            handler: Box::new(LExp::Var(e_var)),
        };
        assert!(e.free_vars().is_empty());
    }

    #[test]
    fn size_counts_nodes() {
        let e = LExp::Prim(Prim::IAdd, vec![LExp::Int(1), LExp::Int(2)]);
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn allocating_prims() {
        assert!(Prim::RAdd.allocates());
        assert!(Prim::StrConcat.allocates());
        assert!(Prim::RefNew.allocates());
        assert!(!Prim::IAdd.allocates());
        assert!(!Prim::RefGet.allocates());
        assert!(!Prim::Print.allocates());
    }
}
