//! Reference evaluator for `LambdaExp`.
//!
//! A direct, region-free, GC-free tree-walking interpreter. It defines the
//! observable semantics that every execution mode of the real system must
//! reproduce; the workspace integration tests run each benchmark under all
//! modes and compare results and printed output against this oracle.
//!
//! The evaluator iterates on tail positions (applications in tail position
//! do not grow the Rust stack) and supports a fuel limit so that property
//! tests can safely execute randomly generated programs.

use crate::exp::{FixFun, LExp, Prim, VarId};
use crate::ty::{ConId, ExnEnv, ExnId, TyConId};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A runtime value of the reference evaluator.
#[derive(Debug, Clone)]
pub enum Value<'a> {
    /// Integer (also booleans-as-needed; booleans use [`Value::Bool`]).
    Int(i64),
    /// Real.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// String.
    Str(Rc<str>),
    /// Tuple.
    Tuple(Rc<[Value<'a>]>),
    /// Datatype constructor value.
    Con {
        /// Datatype.
        tycon: TyConId,
        /// Constructor.
        con: ConId,
        /// Carried value.
        arg: Option<Rc<Value<'a>>>,
    },
    /// Exception value.
    Exn(ExnId, Option<Rc<Value<'a>>>),
    /// Closure from `fn`.
    Closure {
        /// Parameters.
        params: &'a [(VarId, crate::ty::LTy)],
        /// Body.
        body: &'a LExp,
        /// Captured environment.
        env: Env<'a>,
    },
    /// Closure of a `Fix`-bound function, materialized lazily on lookup.
    FixClosure(Rc<RecNode<'a>>, usize),
    /// Mutable reference cell.
    Ref(Rc<RefCell<Value<'a>>>),
    /// Mutable array.
    Array(Rc<RefCell<Vec<Value<'a>>>>),
}

impl Value<'_> {
    fn int(&self) -> i64 {
        match self {
            Value::Int(n) => *n,
            other => panic!("expected int, got {other:?} (ill-typed LambdaExp)"),
        }
    }

    fn real(&self) -> f64 {
        match self {
            Value::Real(r) => *r,
            other => panic!("expected real, got {other:?} (ill-typed LambdaExp)"),
        }
    }

    fn boolean(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, got {other:?} (ill-typed LambdaExp)"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?} (ill-typed LambdaExp)"),
        }
    }
}

/// A recursive-binding environment node: the functions of one `Fix`.
#[derive(Debug)]
pub struct RecNode<'a> {
    funs: &'a [FixFun],
    parent: Env<'a>,
}

#[derive(Debug)]
enum EnvNode<'a> {
    Bind(VarId, Value<'a>, Env<'a>),
    Rec(Rc<RecNode<'a>>, Env<'a>),
}

/// A persistent evaluation environment.
#[derive(Debug, Clone, Default)]
pub struct Env<'a>(Option<Rc<EnvNode<'a>>>);

impl<'a> Env<'a> {
    /// The empty environment.
    pub fn new() -> Self {
        Env(None)
    }

    fn bind(&self, v: VarId, val: Value<'a>) -> Env<'a> {
        Env(Some(Rc::new(EnvNode::Bind(v, val, self.clone()))))
    }

    fn bind_rec(&self, funs: &'a [FixFun]) -> Env<'a> {
        let node = Rc::new(RecNode {
            funs,
            parent: self.clone(),
        });
        Env(Some(Rc::new(EnvNode::Rec(node, self.clone()))))
    }

    fn lookup(&self, v: VarId) -> Option<Value<'a>> {
        let mut cur = &self.0;
        while let Some(node) = cur {
            match &**node {
                EnvNode::Bind(w, val, parent) => {
                    if *w == v {
                        return Some(val.clone());
                    }
                    cur = &parent.0;
                }
                EnvNode::Rec(rec, parent) => {
                    if let Some(i) = rec.funs.iter().position(|f| f.var == v) {
                        return Some(Value::FixClosure(rec.clone(), i));
                    }
                    cur = &parent.0;
                }
            }
        }
        None
    }
}

/// Errors terminating evaluation abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An exception propagated to the top level.
    UncaughtException(String),
    /// The fuel limit was exhausted.
    OutOfFuel,
    /// An unbound variable was referenced (elaboration bug).
    UnboundVariable(u32),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UncaughtException(n) => write!(f, "uncaught exception {n}"),
            EvalError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable v{v}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Outcome of a successful evaluation.
#[derive(Debug)]
pub struct EvalOutcome<'a> {
    /// The program's result value.
    pub value: Value<'a>,
    /// Everything written by `print`, in order.
    pub output: String,
    /// Number of evaluation steps taken.
    pub steps: u64,
}

type Raised<'a> = (ExnId, Option<Rc<Value<'a>>>);
enum Control<'a> {
    Done(Value<'a>),
    Raise(Raised<'a>),
}

/// Evaluates a program body with an optional fuel limit.
///
/// # Errors
///
/// Returns [`EvalError::UncaughtException`] if an exception reaches the top
/// level, and [`EvalError::OutOfFuel`] if `fuel` is `Some` and exhausted.
pub fn eval<'a>(
    body: &'a LExp,
    exns: &ExnEnv,
    fuel: Option<u64>,
) -> Result<EvalOutcome<'a>, EvalError> {
    let mut ev = Evaluator {
        output: String::new(),
        steps: 0,
        fuel,
    };
    match ev.eval(body, &Env::new())? {
        Control::Done(v) => Ok(EvalOutcome {
            value: v,
            output: ev.output,
            steps: ev.steps,
        }),
        Control::Raise((id, _)) => Err(EvalError::UncaughtException(exns.get(id).name.clone())),
    }
}

struct Evaluator {
    output: String,
    steps: u64,
    fuel: Option<u64>,
}

macro_rules! eval_sub {
    ($self:ident, $e:expr, $env:expr) => {
        match $self.eval($e, $env)? {
            Control::Done(v) => v,
            Control::Raise(r) => return Ok(Control::Raise(r)),
        }
    };
}

impl Evaluator {
    fn eval<'a>(&mut self, exp: &'a LExp, env: &Env<'a>) -> Result<Control<'a>, EvalError> {
        // `exp`/`env` are rebound on tail positions; the loop keeps tail
        // calls from consuming Rust stack.
        let mut exp = exp;
        let mut env = env.clone();
        loop {
            self.steps += 1;
            if let Some(f) = self.fuel {
                if self.steps > f {
                    return Err(EvalError::OutOfFuel);
                }
            }
            match exp {
                LExp::Var(v) => {
                    let val = env.lookup(*v).ok_or(EvalError::UnboundVariable(v.0))?;
                    return Ok(Control::Done(val));
                }
                LExp::Int(n) => return Ok(Control::Done(Value::Int(*n))),
                LExp::Real(r) => return Ok(Control::Done(Value::Real(*r))),
                LExp::Str(s) => return Ok(Control::Done(Value::Str(s.as_str().into()))),
                LExp::Bool(b) => return Ok(Control::Done(Value::Bool(*b))),
                LExp::Unit => return Ok(Control::Done(Value::Unit)),
                LExp::Prim(p, args) => {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(eval_sub!(self, a, &env));
                    }
                    return self.prim(*p, vals);
                }
                LExp::Record(es) => {
                    let mut vals = Vec::with_capacity(es.len());
                    for e in es {
                        vals.push(eval_sub!(self, e, &env));
                    }
                    return Ok(Control::Done(Value::Tuple(vals.into())));
                }
                LExp::Select { i, tup: e, .. } => {
                    let v = eval_sub!(self, e, &env);
                    let Value::Tuple(fields) = v else {
                        panic!("select from non-tuple (ill-typed LambdaExp)")
                    };
                    return Ok(Control::Done(fields[*i].clone()));
                }
                LExp::Con {
                    tycon, con, arg, ..
                } => {
                    let a = match arg {
                        Some(e) => Some(Rc::new(eval_sub!(self, e, &env))),
                        None => None,
                    };
                    return Ok(Control::Done(Value::Con {
                        tycon: *tycon,
                        con: *con,
                        arg: a,
                    }));
                }
                LExp::DeCon { scrut, .. } => {
                    let v = eval_sub!(self, scrut, &env);
                    let Value::Con { arg: Some(a), .. } = v else {
                        panic!("decon of non-matching constructor (ill-typed LambdaExp)")
                    };
                    return Ok(Control::Done((*a).clone()));
                }
                LExp::SwitchCon {
                    scrut,
                    arms,
                    default,
                    ..
                } => {
                    let v = eval_sub!(self, scrut, &env);
                    let Value::Con { con, .. } = &v else {
                        panic!("switch on non-constructor (ill-typed LambdaExp)")
                    };
                    match arms.iter().find(|(c, _)| c == con) {
                        Some((_, arm)) => exp = arm,
                        None => match default {
                            Some(d) => exp = d,
                            None => panic!("non-exhaustive SwitchCon with no default"),
                        },
                    }
                }
                LExp::SwitchInt {
                    scrut,
                    arms,
                    default,
                } => {
                    let v = eval_sub!(self, scrut, &env);
                    let n = match &v {
                        Value::Int(n) => *n,
                        Value::Bool(b) => *b as i64,
                        other => panic!("switch on non-int {other:?}"),
                    };
                    match arms.iter().find(|(k, _)| *k == n) {
                        Some((_, arm)) => exp = arm,
                        None => exp = default,
                    }
                }
                LExp::SwitchStr {
                    scrut,
                    arms,
                    default,
                } => {
                    let v = eval_sub!(self, scrut, &env);
                    let s = v.str().to_string();
                    match arms.iter().find(|(k, _)| *k == s) {
                        Some((_, arm)) => exp = arm,
                        None => exp = default,
                    }
                }
                LExp::Fn { params, body, .. } => {
                    return Ok(Control::Done(Value::Closure {
                        params,
                        body,
                        env: env.clone(),
                    }));
                }
                LExp::App(f, args) => {
                    let fv = eval_sub!(self, f, &env);
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(eval_sub!(self, a, &env));
                    }
                    match fv {
                        Value::Closure {
                            params,
                            body,
                            env: cenv,
                        } => {
                            assert_eq!(params.len(), vals.len(), "arity mismatch");
                            let mut e2 = cenv;
                            for ((p, _), v) in params.iter().zip(vals) {
                                e2 = e2.bind(*p, v);
                            }
                            env = e2;
                            exp = body;
                        }
                        Value::FixClosure(node, idx) => {
                            let fun = &node.funs[idx];
                            assert_eq!(fun.params.len(), vals.len(), "arity mismatch");
                            let mut e2 = node.parent.bind_rec(node.funs);
                            for ((p, _), v) in fun.params.iter().zip(vals) {
                                e2 = e2.bind(*p, v);
                            }
                            env = e2;
                            exp = &fun.body;
                        }
                        other => panic!("application of non-function {other:?}"),
                    }
                }
                LExp::Let { var, rhs, body, .. } => {
                    let v = eval_sub!(self, rhs, &env);
                    env = env.bind(*var, v);
                    exp = body;
                }
                LExp::Fix { funs, body } => {
                    env = env.bind_rec(funs);
                    exp = body;
                }
                LExp::If(c, t, e) => {
                    let v = eval_sub!(self, c, &env);
                    exp = if v.boolean() { t } else { e };
                }
                LExp::ExCon { exn, arg } => {
                    let a = match arg {
                        Some(e) => Some(Rc::new(eval_sub!(self, e, &env))),
                        None => None,
                    };
                    return Ok(Control::Done(Value::Exn(*exn, a)));
                }
                LExp::DeExn { scrut, .. } => {
                    let v = eval_sub!(self, scrut, &env);
                    let Value::Exn(_, Some(a)) = v else {
                        panic!("deexn of non-matching exception")
                    };
                    return Ok(Control::Done((*a).clone()));
                }
                LExp::SwitchExn {
                    scrut,
                    arms,
                    default,
                } => {
                    let v = eval_sub!(self, scrut, &env);
                    let Value::Exn(id, _) = &v else {
                        panic!("switch on non-exception")
                    };
                    match arms.iter().find(|(k, _)| k == id) {
                        Some((_, arm)) => exp = arm,
                        None => exp = default,
                    }
                }
                LExp::Raise { exp: e, .. } => {
                    let v = eval_sub!(self, e, &env);
                    let Value::Exn(id, arg) = v else {
                        panic!("raise of non-exception value")
                    };
                    return Ok(Control::Raise((id, arg)));
                }
                LExp::Handle { body, var, handler } => match self.eval(body, &env)? {
                    Control::Done(v) => return Ok(Control::Done(v)),
                    Control::Raise((id, arg)) => {
                        let env2 = env.bind(*var, Value::Exn(id, arg));
                        env = env2;
                        exp = handler;
                    }
                },
            }
        }
    }

    fn prim<'a>(&mut self, p: Prim, mut args: Vec<Value<'a>>) -> Result<Control<'a>, EvalError> {
        use Prim::*;
        let raise = |id: ExnId| Ok(Control::Raise((id, None)));
        let done = |v: Value<'a>| Ok(Control::Done(v));
        macro_rules! binint {
            ($f:expr) => {{
                let b = args.pop().unwrap().int();
                let a = args.pop().unwrap().int();
                ($f)(a, b)
            }};
        }
        macro_rules! binreal {
            ($f:expr) => {{
                let b = args.pop().unwrap().real();
                let a = args.pop().unwrap().real();
                ($f)(a, b)
            }};
        }
        match p {
            IAdd => match binint!(i64::checked_add).filter(|v| int_in_range(*v)) {
                Some(v) => done(Value::Int(v)),
                None => raise(crate::ty::EXN_OVERFLOW),
            },
            ISub => match binint!(i64::checked_sub).filter(|v| int_in_range(*v)) {
                Some(v) => done(Value::Int(v)),
                None => raise(crate::ty::EXN_OVERFLOW),
            },
            IMul => match binint!(i64::checked_mul).filter(|v| int_in_range(*v)) {
                Some(v) => done(Value::Int(v)),
                None => raise(crate::ty::EXN_OVERFLOW),
            },
            IDiv => {
                let b = args.pop().unwrap().int();
                let a = args.pop().unwrap().int();
                if b == 0 {
                    return raise(crate::ty::EXN_DIV);
                }
                // SML `div` is floor division.
                let q = a.wrapping_div(b);
                let r = a.wrapping_rem(b);
                done(Value::Int(if r != 0 && (r < 0) != (b < 0) {
                    q - 1
                } else {
                    q
                }))
            }
            IMod => {
                let b = args.pop().unwrap().int();
                let a = args.pop().unwrap().int();
                if b == 0 {
                    return raise(crate::ty::EXN_DIV);
                }
                done(Value::Int(
                    a.rem_euclid(b) + if b < 0 && a.rem_euclid(b) != 0 { b } else { 0 },
                ))
            }
            INeg => {
                let v = -args.pop().unwrap().int();
                if int_in_range(v) {
                    done(Value::Int(v))
                } else {
                    raise(crate::ty::EXN_OVERFLOW)
                }
            }
            IAbs => {
                let v = args.pop().unwrap().int().abs();
                if int_in_range(v) {
                    done(Value::Int(v))
                } else {
                    raise(crate::ty::EXN_OVERFLOW)
                }
            }
            ILt => done(Value::Bool(binint!(|a, b| a < b))),
            ILe => done(Value::Bool(binint!(|a, b| a <= b))),
            IGt => done(Value::Bool(binint!(|a, b| a > b))),
            IGe => done(Value::Bool(binint!(|a, b| a >= b))),
            IEq => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                let to_i = |v: &Value<'_>| match v {
                    Value::Int(n) => *n,
                    Value::Bool(b) => *b as i64,
                    Value::Unit => 0,
                    other => panic!("IEq on {other:?}"),
                };
                done(Value::Bool(to_i(&a) == to_i(&b)))
            }
            RAdd => done(Value::Real(binreal!(|a, b| a + b))),
            RSub => done(Value::Real(binreal!(|a, b| a - b))),
            RMul => done(Value::Real(binreal!(|a, b| a * b))),
            RDiv => done(Value::Real(binreal!(|a, b| a / b))),
            RNeg => done(Value::Real(-args.pop().unwrap().real())),
            RAbs => done(Value::Real(args.pop().unwrap().real().abs())),
            RLt => done(Value::Bool(binreal!(|a, b| a < b))),
            RLe => done(Value::Bool(binreal!(|a, b| a <= b))),
            RGt => done(Value::Bool(binreal!(|a, b| a > b))),
            RGe => done(Value::Bool(binreal!(|a, b| a >= b))),
            REq => done(Value::Bool(binreal!(|a: f64, b: f64| a == b))),
            IntToReal => done(Value::Real(args.pop().unwrap().int() as f64)),
            Floor => done(Value::Int(args.pop().unwrap().real().floor() as i64)),
            Trunc => done(Value::Int(args.pop().unwrap().real().trunc() as i64)),
            Sqrt => done(Value::Real(args.pop().unwrap().real().sqrt())),
            Sin => done(Value::Real(args.pop().unwrap().real().sin())),
            Cos => done(Value::Real(args.pop().unwrap().real().cos())),
            Atan => done(Value::Real(args.pop().unwrap().real().atan())),
            Ln => done(Value::Real(args.pop().unwrap().real().ln())),
            Exp => done(Value::Real(args.pop().unwrap().real().exp())),
            StrEq => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                done(Value::Bool(a.str() == b.str()))
            }
            StrLt => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                done(Value::Bool(a.str() < b.str()))
            }
            StrConcat => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                done(Value::Str(format!("{}{}", a.str(), b.str()).into()))
            }
            StrSize => done(Value::Int(args.pop().unwrap().str().len() as i64)),
            StrSub => {
                let i = args.pop().unwrap().int();
                let s = args.pop().unwrap();
                let bytes = s.str().as_bytes();
                if i < 0 || i as usize >= bytes.len() {
                    return raise(crate::ty::EXN_SUBSCRIPT);
                }
                done(Value::Int(bytes[i as usize] as i64))
            }
            ItoS => {
                let n = args.pop().unwrap().int();
                done(Value::Str(fmt_sml_int(n).into()))
            }
            RtoS => {
                let r = args.pop().unwrap().real();
                done(Value::Str(fmt_sml_real(r).into()))
            }
            Chr => {
                let n = args.pop().unwrap().int();
                if !(0..=255).contains(&n) {
                    return raise(crate::ty::EXN_SUBSCRIPT);
                }
                done(Value::Str(((n as u8) as char).to_string().into()))
            }
            Print => {
                let s = args.pop().unwrap();
                self.output.push_str(s.str());
                done(Value::Unit)
            }
            RefNew => done(Value::Ref(Rc::new(RefCell::new(args.pop().unwrap())))),
            RefGet => {
                let r = args.pop().unwrap();
                let Value::Ref(cell) = r else {
                    panic!("deref of non-ref")
                };
                let v = cell.borrow().clone();
                done(v)
            }
            RefSet => {
                let v = args.pop().unwrap();
                let r = args.pop().unwrap();
                let Value::Ref(cell) = r else {
                    panic!("assign to non-ref")
                };
                *cell.borrow_mut() = v;
                done(Value::Unit)
            }
            RefEq => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                let (Value::Ref(x), Value::Ref(y)) = (a, b) else {
                    panic!("refeq on non-refs")
                };
                done(Value::Bool(Rc::ptr_eq(&x, &y)))
            }
            ArrNew => {
                let init = args.pop().unwrap();
                let n = args.pop().unwrap().int();
                if n < 0 {
                    return raise(crate::ty::EXN_SIZE);
                }
                done(Value::Array(Rc::new(RefCell::new(vec![init; n as usize]))))
            }
            ArrSub => {
                let i = args.pop().unwrap().int();
                let a = args.pop().unwrap();
                let Value::Array(arr) = a else {
                    panic!("sub of non-array")
                };
                let arr = arr.borrow();
                if i < 0 || i as usize >= arr.len() {
                    return raise(crate::ty::EXN_SUBSCRIPT);
                }
                done(arr[i as usize].clone())
            }
            ArrUpd => {
                let v = args.pop().unwrap();
                let i = args.pop().unwrap().int();
                let a = args.pop().unwrap();
                let Value::Array(arr) = a else {
                    panic!("update of non-array")
                };
                let mut arr = arr.borrow_mut();
                if i < 0 || i as usize >= arr.len() {
                    return raise(crate::ty::EXN_SUBSCRIPT);
                }
                arr[i as usize] = v;
                done(Value::Unit)
            }
            ArrLen => {
                let a = args.pop().unwrap();
                let Value::Array(arr) = a else {
                    panic!("length of non-array")
                };
                let n = arr.borrow().len() as i64;
                done(Value::Int(n))
            }
            ArrEq => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                let (Value::Array(x), Value::Array(y)) = (a, b) else {
                    panic!("arreq on non-arrays")
                };
                done(Value::Bool(Rc::ptr_eq(&x, &y)))
            }
        }
    }
}

/// MiniML integers are 63-bit (the tagged representation is `2i + 1` in a
/// 64-bit word, exactly as in the ML Kit); arithmetic that leaves this
/// range raises `Overflow` in every execution mode.
pub fn int_in_range(v: i64) -> bool {
    (-(1i64 << 62)..(1i64 << 62)).contains(&v)
}

/// Formats an integer in SML style (`~` for the minus sign).
pub fn fmt_sml_int(n: i64) -> String {
    if n < 0 {
        format!("~{}", (n as i128).unsigned_abs())
    } else {
        n.to_string()
    }
}

/// Formats a real in SML style.
pub fn fmt_sml_real(r: f64) -> String {
    let body = if r == r.trunc() && r.abs() < 1e15 {
        format!("{:.1}", r.abs())
    } else {
        format!("{}", r.abs())
    };
    if r.is_sign_negative() {
        format!("~{body}")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{LExp, Prim, VarTable};
    use crate::ty::{ExnEnv, LTy, EXN_DIV};

    fn run(body: &LExp) -> EvalOutcome<'_> {
        eval(body, &ExnEnv::new(), Some(100_000_000)).expect("eval failed")
    }

    #[test]
    fn arithmetic() {
        let e = LExp::Prim(Prim::IAdd, vec![LExp::Int(40), LExp::Int(2)]);
        let out = run(&e);
        assert!(matches!(out.value, Value::Int(42)));
    }

    #[test]
    fn sml_division_floors() {
        // SML: ~7 div 2 = ~4, ~7 mod 2 = 1, 7 div ~2 = ~4, 7 mod ~2 = ~1
        let cases = [
            (-7, 2, -4, 1),
            (7, -2, -4, -1),
            (7, 2, 3, 1),
            (-7, -2, 3, -1),
        ];
        for (a, b, q, r) in cases {
            let d = LExp::Prim(Prim::IDiv, vec![LExp::Int(a), LExp::Int(b)]);
            let m = LExp::Prim(Prim::IMod, vec![LExp::Int(a), LExp::Int(b)]);
            assert!(
                matches!(run(&d).value, Value::Int(x) if x == q),
                "{a} div {b}"
            );
            assert!(
                matches!(run(&m).value, Value::Int(x) if x == r),
                "{a} mod {b}"
            );
        }
    }

    #[test]
    fn division_by_zero_raises_div() {
        let e = LExp::Prim(Prim::IDiv, vec![LExp::Int(1), LExp::Int(0)]);
        let err = eval(&e, &ExnEnv::new(), None).unwrap_err();
        assert_eq!(err, EvalError::UncaughtException("Div".to_string()));
        let _ = EXN_DIV;
    }

    #[test]
    fn handle_catches() {
        let mut vars = VarTable::new();
        let v = vars.fresh("e");
        let e = LExp::Handle {
            body: Box::new(LExp::Prim(Prim::IDiv, vec![LExp::Int(1), LExp::Int(0)])),
            var: v,
            handler: Box::new(LExp::Int(99)),
        };
        assert!(matches!(run(&e).value, Value::Int(99)));
    }

    #[test]
    fn closures_capture() {
        let mut vars = VarTable::new();
        let x = vars.fresh("x");
        let y = vars.fresh("y");
        // let x = 10 in (fn y => y + x) 32
        let e = LExp::Let {
            var: x,
            ty: LTy::Int,
            rhs: Box::new(LExp::Int(10)),
            body: Box::new(LExp::App(
                Box::new(LExp::Fn {
                    params: vec![(y, LTy::Int)],
                    ret: LTy::Int,
                    body: Box::new(LExp::Prim(Prim::IAdd, vec![LExp::Var(y), LExp::Var(x)])),
                }),
                vec![LExp::Int(32)],
            )),
        };
        assert!(matches!(run(&e).value, Value::Int(42)));
    }

    #[test]
    fn fix_recursion_and_tail_calls() {
        let mut vars = VarTable::new();
        let f = vars.fresh("loop");
        let n = vars.fresh("n");
        let acc = vars.fresh("acc");
        // loop(n, acc) = if n = 0 then acc else loop(n-1, acc+n); deep enough
        // to require tail-call iteration.
        let body = LExp::If(
            Box::new(LExp::Prim(Prim::IEq, vec![LExp::Var(n), LExp::Int(0)])),
            Box::new(LExp::Var(acc)),
            Box::new(LExp::App(
                Box::new(LExp::Var(f)),
                vec![
                    LExp::Prim(Prim::ISub, vec![LExp::Var(n), LExp::Int(1)]),
                    LExp::Prim(Prim::IAdd, vec![LExp::Var(acc), LExp::Var(n)]),
                ],
            )),
        );
        let e = LExp::Fix {
            funs: vec![FixFun {
                var: f,
                params: vec![(n, LTy::Int), (acc, LTy::Int)],
                ret: LTy::Int,
                body,
            }],
            body: Box::new(LExp::App(
                Box::new(LExp::Var(f)),
                vec![LExp::Int(1_000_000), LExp::Int(0)],
            )),
        };
        let out = run(&e);
        assert!(matches!(out.value, Value::Int(500_000_500_000)));
    }

    #[test]
    fn print_collects_output() {
        let e = LExp::Prim(Prim::Print, vec![LExp::Str("hi".into())]);
        assert_eq!(run(&e).output, "hi");
    }

    #[test]
    fn refs_are_mutable() {
        let mut vars = VarTable::new();
        let r = vars.fresh("r");
        // let r = ref 1 in (r := 5; !r)
        let e = LExp::Let {
            var: r,
            ty: LTy::Ref(Box::new(LTy::Int)),
            rhs: Box::new(LExp::Prim(Prim::RefNew, vec![LExp::Int(1)])),
            body: Box::new(LExp::Let {
                var: vars.fresh("_"),
                ty: LTy::Unit,
                rhs: Box::new(LExp::Prim(Prim::RefSet, vec![LExp::Var(r), LExp::Int(5)])),
                body: Box::new(LExp::Prim(Prim::RefGet, vec![LExp::Var(r)])),
            }),
        };
        assert!(matches!(run(&e).value, Value::Int(5)));
    }

    #[test]
    fn fuel_limits_execution() {
        let mut vars = VarTable::new();
        let f = vars.fresh("f");
        let x = vars.fresh("x");
        let e = LExp::Fix {
            funs: vec![FixFun {
                var: f,
                params: vec![(x, LTy::Int)],
                ret: LTy::Int,
                body: LExp::App(Box::new(LExp::Var(f)), vec![LExp::Var(x)]),
            }],
            body: Box::new(LExp::App(Box::new(LExp::Var(f)), vec![LExp::Int(0)])),
        };
        assert_eq!(
            eval(&e, &ExnEnv::new(), Some(1000)).unwrap_err(),
            EvalError::OutOfFuel
        );
    }

    #[test]
    fn overflow_raises() {
        let e = LExp::Prim(Prim::IMul, vec![LExp::Int(i64::MAX), LExp::Int(2)]);
        assert_eq!(
            eval(&e, &ExnEnv::new(), None).unwrap_err(),
            EvalError::UncaughtException("Overflow".to_string())
        );
    }

    #[test]
    fn arrays_bounds_checked() {
        let mut vars = VarTable::new();
        let a = vars.fresh("a");
        let e = LExp::Let {
            var: a,
            ty: LTy::Array(Box::new(LTy::Int)),
            rhs: Box::new(LExp::Prim(Prim::ArrNew, vec![LExp::Int(3), LExp::Int(7)])),
            body: Box::new(LExp::Prim(Prim::ArrSub, vec![LExp::Var(a), LExp::Int(5)])),
        };
        assert_eq!(
            eval(&e, &ExnEnv::new(), None).unwrap_err(),
            EvalError::UncaughtException("Subscript".to_string())
        );
    }

    #[test]
    fn sml_number_formatting() {
        assert_eq!(fmt_sml_int(-3), "~3");
        assert_eq!(
            fmt_sml_int(i64::MIN),
            format!("~{}", (i64::MIN as i128).unsigned_abs())
        );
        assert_eq!(fmt_sml_real(2.0), "2.0");
        assert_eq!(fmt_sml_real(-0.5), "~0.5");
    }
}
