//! The `LambdaExp` intermediate language of the ML Kit pipeline (paper §3),
//! together with the optimizer and a reference evaluator.
//!
//! `LambdaExp` is an explicitly typed, monomorphic lambda language produced
//! by elaboration (`kit-typing`). Patterns have been compiled to decision
//! trees, polymorphic bindings have been specialized per instantiation, and
//! polymorphic equality has been expanded into type-specific code (after
//! Elsman, *Polymorphic equality — no tags required*), which is what makes
//! the untagged `r` execution mode possible.
//!
//! The [`eval`] module provides a direct tree-walking evaluator used as the
//! ground-truth oracle in differential tests: every execution mode of the
//! full system (regions, regions+GC, GC only, generational baseline) must
//! agree with it.

pub mod eval;
pub mod exp;
pub mod opt;
pub mod pretty;
pub mod ty;

pub use exp::{FixFun, LExp, LProgram, Prim, VarId, VarTable};
pub use ty::{ConId, DataEnv, Datatype, ExnEnv, ExnId, LTy, TyConId};
