//! Large objects (paper §3.1): strings and arrays.
//!
//! Large objects are allocated outside region pages (the paper uses
//! `malloc`) and linked into a per-region list hanging off the region
//! descriptor; popping or resetting the region frees the list. The
//! collector traverses arrays (they may contain pointers) but **never
//! copies** large objects; unreachable ones are released at the end of a
//! collection via a mark bit.

use crate::value::{Word, LOBJ_BASE, LOBJ_STRIDE};

/// Payload of a large object.
#[derive(Debug, Clone, PartialEq)]
pub enum LData {
    /// Immutable string.
    Str(String),
    /// Mutable array of values.
    Arr(Vec<Word>),
}

/// A large object.
#[derive(Debug, Clone)]
pub struct Lobj {
    /// Payload.
    pub data: LData,
    /// Next object in the owning region's list (id + 1; 0 = none).
    pub next: u32,
    /// GC mark (reachable in the current collection).
    pub marked: bool,
}

/// The large-object table.
#[derive(Debug, Default)]
pub struct Lobjs {
    pub(crate) table: Vec<Option<Lobj>>,
    free_ids: Vec<u32>,
    bytes: usize,
}

impl Lobjs {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a large object, returning its id.
    pub fn alloc(&mut self, data: LData, next: u32) -> u32 {
        self.bytes += Self::size_of(&data);
        let obj = Lobj {
            data,
            next,
            marked: false,
        };
        match self.free_ids.pop() {
            Some(id) => {
                self.table[id as usize] = Some(obj);
                id
            }
            None => {
                let id = self.table.len() as u32;
                self.table.push(Some(obj));
                id
            }
        }
    }

    fn size_of(d: &LData) -> usize {
        match d {
            LData::Str(s) => s.len(),
            LData::Arr(a) => a.len() * 8,
        }
    }

    /// Frees a large object by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not live (double free).
    pub fn free(&mut self, id: u32) {
        let obj = self.table[id as usize]
            .take()
            .expect("double free of large object");
        self.bytes -= Self::size_of(&obj.data);
        self.free_ids.push(id);
    }

    /// Shared access.
    ///
    /// # Panics
    ///
    /// Panics if the id is not live.
    pub fn get(&self, id: u32) -> &Lobj {
        self.table[id as usize]
            .as_ref()
            .expect("dangling large-object id")
    }

    /// Exclusive access.
    ///
    /// # Panics
    ///
    /// Panics if the id is not live.
    pub fn get_mut(&mut self, id: u32) -> &mut Lobj {
        self.table[id as usize]
            .as_mut()
            .expect("dangling large-object id")
    }

    /// `true` if `id` refers to a live object. The sliced collector uses
    /// this to drop queued ids whose object was freed by an `endregion`
    /// between slices.
    pub fn is_live(&self, id: u32) -> bool {
        self.table
            .get(id as usize)
            .is_some_and(|slot| slot.is_some())
    }

    /// Total payload bytes currently live (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.table.len() - self.free_ids.len()
    }

    /// The word address encoding object `id`.
    pub fn addr_of(id: u32) -> u64 {
        LOBJ_BASE + id as u64 * LOBJ_STRIDE
    }

    /// Decodes a large-object address back to its id.
    pub fn id_of(addr: u64) -> u32 {
        ((addr - LOBJ_BASE) / LOBJ_STRIDE) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let mut t = Lobjs::new();
        let a = t.alloc(LData::Str("hello".into()), 0);
        let b = t.alloc(LData::Arr(vec![1, 2, 3]), a + 1);
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.get(b).next, a + 1);
        t.free(a);
        assert_eq!(t.live_count(), 1);
        let c = t.alloc(LData::Str("x".into()), 0);
        assert_eq!(c, a, "ids are recycled");
    }

    #[test]
    fn byte_accounting() {
        let mut t = Lobjs::new();
        let a = t.alloc(LData::Arr(vec![0; 10]), 0);
        assert_eq!(t.bytes(), 80);
        t.free(a);
        assert_eq!(t.bytes(), 0);
    }

    #[test]
    fn address_round_trip() {
        for id in [0u32, 1, 77] {
            assert_eq!(Lobjs::id_of(Lobjs::addr_of(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut t = Lobjs::new();
        let a = t.alloc(LData::Str("s".into()), 0);
        t.free(a);
        t.free(a);
    }
}
