//! Runtime configuration: the execution modes of the paper (§1.2) and the
//! collector policy knobs of §4.

/// Runtime configuration.
///
/// The four modes measured in the paper are produced by [`RtConfig::r`],
/// [`RtConfig::rt`], [`RtConfig::gt`] and [`RtConfig::rgt`]. `gt` mode is
/// realized at compile time (all infinite-region allocations target one
/// global region) combined with `tagged + gc` here.
#[derive(Debug, Clone, PartialEq)]
pub struct RtConfig {
    /// log2 of the region-page size in words (paper §2.4: pages are 2^n
    /// words, aligned, so the page descriptor is found by masking).
    pub page_words_log2: u32,
    /// Whether values carry tag words (required for garbage collection).
    pub tagged: bool,
    /// Whether the garbage collector may run.
    pub gc_enabled: bool,
    /// Collection is requested when the free-list falls below this
    /// fraction of the total region heap (paper §4: 1/3).
    pub gc_threshold: f64,
    /// After a collection the region heap is grown until it is at least
    /// this multiple of the live (to-space) pages (paper §4: 3.0).
    pub heap_to_live_ratio: f64,
    /// Asymmetric heap sizing: growth to `heap_to_live_ratio × live` is
    /// immediate, but free pages are only released back to the allocator
    /// when the heap exceeds `heap_shrink_factor` times that target
    /// (hysteresis, so a single deep recursion does not thrash the arena).
    /// The shrink trims back to the growth target; `None` never shrinks.
    pub heap_shrink_factor: Option<f64>,
    /// Initial number of region pages.
    pub initial_pages: usize,
    /// Boxed values at least this many words go to the large-object space
    /// (strings and arrays always do).
    pub large_object_words: usize,
    /// Record a region profile (paper Fig. 5).
    pub profile: bool,
    /// Generational collection policy (the SML/NJ-substitute baseline);
    /// `None` selects the paper's Cheney-for-regions collector.
    pub generational: Option<GenPolicy>,
    /// Number of collector threads for the Cheney-for-regions collector.
    /// `1` (the default) runs the exact serial collector; `> 1` partitions
    /// live regions across a deterministic worker pool (DESIGN.md §6g).
    /// Ignored by the generational baseline and by sliced collection.
    pub gc_workers: usize,
    /// Incremental collection: bound the scan work done per pause to this
    /// many words and resume the collection at subsequent `GcCheck` safe
    /// points. `None` (the default) collects in one stop-the-world pause.
    /// Ignored by the generational baseline; takes precedence over
    /// `gc_workers` (slices run serially).
    pub gc_slice_budget_words: Option<u64>,
    /// Debugging: overwrite the payload of deallocated region pages with a
    /// poison pattern, so dangling-pointer dereferences fail loudly
    /// instead of silently reading stale values.
    pub poison: bool,
    /// Memory quota: cap the number of *materialized* region pages (the
    /// same accounting as `RtStats::peak_pages`, large objects included at
    /// their page-equivalent size). Allocation itself never fails — the
    /// breach sets a sticky flag that the VM observes at the next `GcCheck`
    /// safe point (after giving the collector a chance to get back under
    /// the cap), so enforcement is deterministic across engines and does
    /// not perturb the GC schedule. `None` (the default) is unlimited.
    pub max_heap_pages: Option<usize>,
    /// Wall-clock deadline: the run fails with a typed
    /// `VmError::DeadlineExceeded` at the first `GcCheck` safe point whose
    /// (strided) clock read observes `Instant::now() >= deadline` — the
    /// same points fuel overruns and page-quota breaches surface at, so a
    /// deadlined run sees exactly the allocation trajectory an undeadlined
    /// run would have seen up to the breach, on every dispatch engine.
    /// `None` (the default) never expires.
    pub deadline: Option<std::time::Instant>,
}

/// Policy knobs for the two-generation baseline collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenPolicy {
    /// Minor collection once the nursery holds this many pages.
    pub nursery_pages: usize,
    /// Major collection once the tenured generation exceeds this multiple
    /// of its size after the previous major collection.
    pub major_growth: usize,
}

impl Default for GenPolicy {
    fn default() -> Self {
        GenPolicy {
            nursery_pages: 64,
            major_growth: 3,
        }
    }
}

impl RtConfig {
    /// Words per region page.
    pub fn page_words(&self) -> usize {
        1 << self.page_words_log2
    }

    /// Usable payload words per page (page minus the 2-word descriptor).
    pub fn page_data_words(&self) -> usize {
        self.page_words() - 2
    }

    /// Mode `r`: regions alone, untagged (fastest, allows dangling
    /// pointers).
    pub fn r() -> Self {
        RtConfig {
            tagged: false,
            gc_enabled: false,
            ..Self::base()
        }
    }

    /// Mode `rt`: regions alone, with tagging (isolates the tagging cost,
    /// paper Table 1).
    pub fn rt() -> Self {
        RtConfig {
            tagged: true,
            gc_enabled: false,
            ..Self::base()
        }
    }

    /// Mode `gt`: garbage collection within a degenerate region stack
    /// (region inference disabled at compile time).
    pub fn gt() -> Self {
        RtConfig {
            tagged: true,
            gc_enabled: true,
            ..Self::base()
        }
    }

    /// Mode `rgt`: regions combined with garbage collection.
    pub fn rgt() -> Self {
        RtConfig {
            tagged: true,
            gc_enabled: true,
            ..Self::base()
        }
    }

    fn base() -> Self {
        RtConfig {
            page_words_log2: 8, // 256 words = 2 KiB pages
            tagged: true,
            gc_enabled: false,
            gc_threshold: 1.0 / 3.0,
            heap_to_live_ratio: 3.0,
            heap_shrink_factor: Some(4.0),
            initial_pages: 64,
            large_object_words: 128,
            profile: false,
            generational: None,
            gc_workers: 1,
            gc_slice_budget_words: None,
            poison: false,
            max_heap_pages: None,
            deadline: None,
        }
    }
}

impl Default for RtConfig {
    fn default() -> Self {
        Self::rgt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_are_powers_of_two() {
        let c = RtConfig::default();
        assert_eq!(c.page_words(), 256);
        assert_eq!(c.page_data_words(), 254);
    }

    #[test]
    fn modes_match_paper() {
        assert!(!RtConfig::r().tagged && !RtConfig::r().gc_enabled);
        assert!(RtConfig::rt().tagged && !RtConfig::rt().gc_enabled);
        assert!(RtConfig::gt().tagged && RtConfig::gt().gc_enabled);
        assert!(RtConfig::rgt().tagged && RtConfig::rgt().gc_enabled);
    }
}
