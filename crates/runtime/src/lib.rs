//! The region runtime with garbage collection — the primary contribution of
//! *Combining Region Inference and Garbage Collection* (PLDI 2002), §2–3.
//!
//! The store consists of a **stack** and a **region heap** (paper §2.1).
//! The region heap is a set of fixed-size, 2^n-word *region pages*, some of
//! which are linked in a *free-list*. An *infinite region* is a linked list
//! of region pages described by a *region descriptor* (fp, a, e, b); a
//! *finite region* is a statically-sized slot in an activation record on
//! the stack. Popping an infinite region appends its pages to the free-list
//! in constant time. *Large objects* (strings, arrays) live outside region
//! pages in per-region linked lists (§3.1).
//!
//! Garbage collection ([`gc`]) extends Cheney's copying collector to work
//! one region at a time (§2.2–2.5): at a collection, every region's page
//! list becomes part of a single global from-space and the region is given
//! a fresh to-space page; values are evacuated *into the region they came
//! from* (found through the *origin pointer* in the page descriptor, §2.4);
//! a *scan stack* holds one scan pointer per partially-scanned region,
//! tracked by the region-status bit `b`; values in finite regions on the
//! stack are traversed in place via the *scan buffer* and temporarily
//! marked as constants (§2.5). Constants in the data segment are never
//! traversed; large objects are traversed but never copied.
//!
//! Execution modes (§1.2) are selected by [`RtConfig`]: untagged regions
//! (`r`), tagged regions (`rt`), garbage collection with a degenerate
//! region stack (`gt`), and regions plus garbage collection (`rgt`).
//!
//! # Examples
//!
//! ```
//! use kit_runtime::{Rt, RtConfig};
//!
//! let mut rt = Rt::new(RtConfig::rgt());
//! let r = rt.letregion(0);
//! let pair = rt.alloc_record(r, &[rt.tag_int(1), rt.tag_int(2)]);
//! assert_eq!(rt.untag_int(rt.field(pair, 0)), 1);
//! rt.endregion();
//! ```

pub mod config;
pub mod gc;
mod gc_par;
pub mod gc_sliced;
pub mod heap;
pub mod lobj;
pub mod profile;
pub mod region;
pub mod rt;
pub mod stats;
pub mod value;

pub use config::RtConfig;
pub use rt::{RegionId, Rt};
pub use stats::RtStats;
pub use value::Word;
