//! Cheney's stop-and-copy collector extended to regions (paper §2.2–2.5).
//!
//! One collection proceeds as follows:
//!
//! 1. Every region's page list is detached and concatenated into a single
//!    **global from-space**; each region descriptor is re-initialised with
//!    a fresh page from the free-list (its to-space). The collector never
//!    allocates into from-space.
//! 2. Every root is *evacuated*: scalars and data-segment constants are
//!    returned unchanged; pointers into the stack (values in **finite
//!    regions**) are marked as constants and queued on the **scan buffer**
//!    — they are traversed in place, never moved; **large objects** are
//!    marked and arrays queued for traversal — they are traversed but
//!    never copied (§3.1); heap values are copied *into the region they
//!    came from*, found through the **origin pointer** of their page
//!    (§2.4), and a forward pointer (even word) replaces their tag (odd
//!    word).
//! 3. Each region has at most one scan pointer, kept on the **scan stack**
//!    while the region status bit `b` is `SOME`; scanning a region runs
//!    Cheney's loop locally until the scan pointer catches the region's
//!    allocation pointer, following next-page links and skipping page
//!    slack via the sentinel tag.
//! 4. Afterwards the constant marks on finite-region values are removed,
//!    unmarked large objects are freed, the global from-space is appended
//!    to the free-list in O(1), and the heap is grown to maintain the
//!    heap-to-live ratio (§4).

use crate::heap::{PAGE_HDR, PAGE_NEXT, PAGE_ORIGIN};
use crate::lobj::{LData, Lobjs};
use crate::region::RegionId;
use crate::rt::Rt;
use crate::stats::GcRecord;
use crate::value::{
    is_ptr, ptr, ptr_addr, space_of, Kind, Space, Tag, Word, NONE_ADDR, STACK_BASE,
};

/// Policy hook of the shared scan loop: all collector variants (full,
/// generational, sliced) share [`evacuate_with`], [`cheney_region_with`]
/// and [`drain_with`], differing only in how a heap object's destination
/// is decided.
pub(crate) trait EvacPolicy: Copy {
    /// Decides the fate of the heap object on `page`: `Some(r)` copies it
    /// into region `r`; `None` leaves it in place.
    fn heap_dest(self, rt: &Rt, page: u64) -> Option<RegionId>;
}

/// Full collection: every heap object is in from-space and is copied into
/// the region its page originated from (paper §2.4).
#[derive(Clone, Copy)]
pub(crate) struct FullEvac;

impl EvacPolicy for FullEvac {
    #[inline]
    fn heap_dest(self, rt: &Rt, page: u64) -> Option<RegionId> {
        Some(RegionId(rt.heap.read(page + PAGE_ORIGIN) as u32))
    }
}

/// Generational phase: only objects on pages stamped [`FROM_MARK`] move —
/// into the promotion target — and everything else stays put.
#[derive(Clone, Copy)]
pub(crate) struct GenEvac {
    to: RegionId,
}

impl EvacPolicy for GenEvac {
    #[inline]
    fn heap_dest(self, rt: &Rt, page: u64) -> Option<RegionId> {
        if rt.heap.read(page + PAGE_ORIGIN) == FROM_MARK {
            Some(self.to)
        } else {
            None
        }
    }
}

/// Performs one garbage collection.
///
/// `root_slots` are indices into `rt.stack` holding live values (the VM's
/// frame maps); `extra_roots` are additional value words held in VM
/// registers (e.g. an in-flight exception value).
///
/// # Panics
///
/// Panics if the runtime is untagged — pointer tracing requires tags.
pub fn collect(rt: &mut Rt, root_slots: &[usize], extra_roots: &mut [Word]) {
    assert!(
        rt.config.tagged,
        "garbage collection requires tagged values"
    );
    if rt.config.gc_workers > 1 && rt.config.gc_slice_budget_words.is_none() {
        return crate::gc_par::collect_parallel(rt, root_slots, extra_roots);
    }
    let t0 = std::time::Instant::now();
    rt.in_gc = true;
    // Write the mutator's bump cursor back: the accounting below and the
    // flip read `a`/`used_words` straight from the descriptors, and the
    // cache stays invalid for the whole collection (GC-path allocations
    // write through).
    rt.flush_alloc_cache();
    if rt.config.heap_shrink_factor.is_some() {
        // To-space should fill the arena bottom-up so the post-collection
        // shrink finds its free pages at the physical tail.
        rt.heap.sort_free_list();
    }

    // ---- flip: detach all pages into the global from-space, give every
    // region a fresh to-space page.
    let flip = flip_all(rt);

    let mut st = GcState::new();

    // ---- evacuate the root set.
    for &slot in root_slots {
        let v = rt.stack[slot];
        rt.stack[slot] = evacuate_with(rt, &mut st, v, FullEvac);
    }
    for v in extra_roots.iter_mut() {
        *v = evacuate_with(rt, &mut st, *v, FullEvac);
    }

    // ---- collect_regions (paper §2.5).
    drain_with(rt, &mut st, FullEvac);

    // ---- unmark finite-region values (remove constant marks, §2.5).
    unmark_scan_buffer(rt, &st.scan_buffer);

    // ---- sweep large objects: free unmarked, unmark survivors.
    let lobjs_freed = sweep_lobjs_all(rt);

    finish_collection(rt, &flip, st.copied, lobjs_freed, t0);
}

/// Accounting + flip shared by the serial and parallel full collectors:
/// detaches every region's page list into one global from-space and gives
/// every region a fresh to-space page (the paper gives each one eagerly).
#[derive(Debug)]
pub(crate) struct FlipInfo {
    /// Head of the detached from-space page chain (`NONE_ADDR` if empty).
    pub(crate) fs_head: u64,
    /// Any address inside the chain's tail page (for `free_run`).
    pub(crate) fs_tail_last_addr: u64,
    /// Total detached pages.
    pub(crate) from_pages: usize,
    /// Unused words inside the detached pages (Table 3 waste).
    pub(crate) waste_words: u64,
    /// Total payload words of the detached pages.
    pub(crate) from_space_words: u64,
    /// Pages each region contributed, indexed by region id (the parallel
    /// collector's partitioning weight).
    pub(crate) region_from_pages: Vec<usize>,
}

pub(crate) fn flip_all(rt: &mut Rt) -> FlipInfo {
    // ---- accounting before the flip (Table 3 inputs).
    let page_payload = (rt.heap.page_words() - PAGE_HDR as usize) as u64;
    let mut waste_words = 0u64;
    let mut from_pages = 0usize;
    let mut region_from_pages = Vec::with_capacity(rt.regions.len());
    for d in &rt.regions {
        region_from_pages.push(d.pages);
        from_pages += d.pages;
        waste_words += d.pages as u64 * page_payload - d.used_words;
    }
    let from_space_words = from_pages as u64 * page_payload;

    let mut fs_head = NONE_ADDR;
    let mut fs_tail_last_addr = NONE_ADDR; // any address within the tail page
    for i in 0..rt.regions.len() {
        let (fp, e) = {
            let d = &rt.regions[i];
            (d.fp, d.e)
        };
        if fp != NONE_ADDR {
            let last_page = e - rt.heap.page_words() as u64;
            rt.heap.write(last_page + PAGE_NEXT, fs_head);
            if fs_head == NONE_ADDR {
                fs_tail_last_addr = e - 1;
            }
            fs_head = fp;
        }
        let d = &mut rt.regions[i];
        d.fp = NONE_ADDR;
        d.pages = 0;
        d.used_words = 0;
        d.status = false;
        // Fresh to-space page (the paper gives every region one eagerly).
        let page = rt.heap.alloc_page(i as u64);
        let pw = rt.heap.page_words() as u64;
        let d = &mut rt.regions[i];
        d.fp = page;
        d.a = page + PAGE_HDR;
        d.e = page + pw;
        d.pages = 1;
    }
    FlipInfo {
        fs_head,
        fs_tail_last_addr,
        from_pages,
        waste_words,
        from_space_words,
        region_from_pages,
    }
}

/// Full-collection epilogue shared by the serial and parallel collectors:
/// releases the from-space, applies the heap-sizing policy and records the
/// collection in the statistics.
pub(crate) fn finish_collection(
    rt: &mut Rt,
    flip: &FlipInfo,
    copied: u64,
    lobjs_freed: usize,
    t0: std::time::Instant,
) {
    // ---- release the global from-space in O(1).
    if flip.fs_head != NONE_ADDR {
        rt.heap
            .free_run(flip.fs_head, flip.fs_tail_last_addr, flip.from_pages);
    }

    // ---- post-collection policy and statistics.
    let live_pages: usize = rt.regions.iter().map(|d| d.pages).sum();
    // Parallel mode trades memory for collection time deliberately: the
    // headroom factor widens the garbage budget between collections
    // (collector work per allocated byte falls as `live / (heap − live)`
    // does), so the farmed-out collections are fewer and each one finds
    // more of the short-lived garbage already dead. `gc_workers == 1`
    // keeps the serial policy bit-for-bit. The condition must mirror the
    // collector dispatch exactly: a slice budget routes collection to the
    // serial sliced collector even when `gc_workers > 1` (documented
    // precedence, config.rs), and that run must be bit-identical to the
    // same config with one worker — so the parallel headroom may not
    // apply when the parallel collector never runs.
    let headroom = if rt.config.gc_workers > 1 && rt.config.gc_slice_budget_words.is_none() {
        PAR_HEADROOM
    } else {
        1.0
    };
    let want_total =
        ((live_pages as f64) * rt.config.heap_to_live_ratio * headroom).ceil() as usize;
    if rt.heap.total_pages() < want_total {
        rt.heap.grow(want_total - rt.heap.total_pages());
        rt.stats.heap_grows += 1;
    } else {
        shrink_with_hysteresis(rt, want_total);
    }
    rt.stats.gc_records.push(GcRecord {
        prev_live_pages: rt.stats.last_live_pages,
        pages_requested: rt.stats.pages_requested_since_gc,
        from_pages: flip.from_pages,
        live_pages,
        waste_words: flip.waste_words,
        from_space_words: flip.from_space_words,
        copied_words: copied,
        lobjs_freed,
    });
    rt.stats.last_live_pages = live_pages;
    rt.stats.pages_requested_since_gc = 0;
    rt.stats.gc_count += 1;
    rt.stats.gc_copied_words += copied;
    rt.stats.record_pause(t0.elapsed().as_nanos() as u64);
    rt.gc_needed = false;
    rt.in_gc = false;
    rt.observe_mem();
    if rt.profiler.enabled() {
        let regions = rt.regions.clone();
        rt.profiler.sample(&regions);
    }
}

/// Removes the constant marks left on finite-region (stack) boxes by the
/// scan (§2.5).
pub(crate) fn unmark_scan_buffer(rt: &mut Rt, scan_buffer: &[usize]) {
    for &slot in scan_buffer {
        let mut tag = Tag::decode(rt.stack[slot]);
        tag.mark = false;
        rt.stack[slot] = tag.encode();
    }
}

/// Sweeps every region's large-object list: frees unmarked objects,
/// unmarks survivors. Returns the number freed.
pub(crate) fn sweep_lobjs_all(rt: &mut Rt) -> usize {
    let mut lobjs_freed = 0usize;
    for i in 0..rt.regions.len() {
        let mut head = rt.regions[i].lobjs;
        let mut new_head = 0u32;
        while head != 0 {
            let id = head - 1;
            let (next, marked) = {
                let o = rt.lobjs.get(id);
                (o.next, o.marked)
            };
            head = next;
            if marked {
                let o = rt.lobjs.get_mut(id);
                o.marked = false;
                o.next = new_head;
                new_head = id + 1;
            } else {
                rt.lobjs.free(id);
                lobjs_freed += 1;
            }
        }
        rt.regions[i].lobjs = new_head;
    }
    lobjs_freed
}

/// Heap-to-live multiplier applied on top of `heap_to_live_ratio` when
/// the parallel collector is active (`gc_workers > 1`): the space half
/// of the collector's space-time tradeoff, see `finish_collection`.
const PAR_HEADROOM: f64 = 3.0;

/// Absolute minimum width of the shrink hysteresis band, in pages.
const MIN_SHRINK_BAND: usize = 2;

/// Minimum width of the shrink hysteresis band: one page of live-set
/// noise is amplified to `heap_to_live_ratio` pages of growth-target
/// movement, so any narrower band would let a workload oscillating by a
/// single live page release and re-grow the arena tail on every
/// collection. A factor close to 1.0 would otherwise make `cap == floor`
/// (no band at all).
fn min_shrink_band(rt: &Rt) -> usize {
    (rt.config.heap_to_live_ratio.ceil() as usize).max(MIN_SHRINK_BAND)
}

/// Asymmetric heap sizing (growth is immediate, above): once the arena
/// exceeds `heap_shrink_factor` times the growth target, free tail pages
/// are released back down to the target. The hysteresis band between the
/// two keeps a workload that oscillates around one size from thrashing
/// `grow`/`release_tail` on every collection; the band is never narrower
/// than [`min_shrink_band`] pages regardless of the factor.
fn shrink_with_hysteresis(rt: &mut Rt, want_total: usize) {
    let Some(factor) = rt.config.heap_shrink_factor else {
        return;
    };
    let floor = want_total.max(rt.config.initial_pages);
    let cap = (((floor as f64) * factor).ceil() as usize).max(floor + min_shrink_band(rt));
    if rt.heap.total_pages() > cap {
        let released = rt.heap.release_tail(rt.heap.total_pages() - floor);
        if released > 0 {
            rt.stats.heap_shrinks += 1;
            rt.stats.pages_released += released as u64;
        }
    }
}

/// Page-origin marker identifying detached from-space pages during a
/// generational phase.
const FROM_MARK: u64 = u64::MAX - 1;

/// One generational collection of the baseline runtime (the SML/NJ
/// substitute, DESIGN.md §4).
///
/// A **minor** collection promotes nursery survivors into the tenured
/// generation; `remembered` holds the field addresses mutated since the
/// previous collection (the write barrier), which may contain old→young
/// pointers. A **major** collection additionally runs a semispace pass
/// over the tenured generation (after the minor the nursery is empty, so
/// the stack is the complete root set).
pub fn collect_gen(
    rt: &mut Rt,
    root_slots: &[usize],
    remembered: &mut Vec<u64>,
    young: RegionId,
    old: RegionId,
    major: bool,
) {
    let t0 = std::time::Instant::now();
    rt.in_gc = true;
    rt.flush_alloc_cache();
    if major && rt.config.heap_shrink_factor.is_some() {
        // Same reasoning as in [`collect`]: the semispace passes must fill
        // to-space from the arena bottom so the post-collection shrink
        // finds its free pages at the physical tail. Without this the
        // tenured survivors land on arbitrary free-list pages and
        // `release_tail` stops at the first in-use page it meets.
        rt.heap.sort_free_list();
    }
    collect_phase(rt, root_slots, remembered, young, old);
    rt.stats.minor_gcs += 1;
    remembered.clear();
    if major {
        collect_phase(rt, root_slots, &mut Vec::new(), old, old);
        rt.stats.major_gcs += 1;
        // Maintain the heap-to-live ratio after a major collection.
        let live: usize = rt.regions.iter().map(|d| d.pages).sum();
        let want = ((live as f64) * rt.config.heap_to_live_ratio).ceil() as usize;
        if rt.heap.total_pages() < want {
            rt.heap.grow(want - rt.heap.total_pages());
            rt.stats.heap_grows += 1;
        } else {
            shrink_with_hysteresis(rt, want);
        }
        rt.stats.last_live_pages = live;
    }
    rt.stats.gc_count += 1;
    rt.stats.pages_requested_since_gc = 0;
    rt.stats.record_pause(t0.elapsed().as_nanos() as u64);
    rt.gc_needed = false;
    rt.in_gc = false;
    rt.observe_mem();
}

/// Evacuates everything live in `from` into `to` (which may be `from`
/// itself, giving a classic semispace flip). Objects outside `from` are
/// left in place.
fn collect_phase(
    rt: &mut Rt,
    root_slots: &[usize],
    remembered: &mut [u64],
    from: RegionId,
    to: RegionId,
) {
    let pw = rt.heap.page_words() as u64;
    // Detach the from-region's pages, stamping them as from-space.
    let (fp, e, pages) = {
        let d = &rt.regions[from.0 as usize];
        (d.fp, d.e, d.pages)
    };
    let mut fs_tail = NONE_ADDR;
    if fp != NONE_ADDR {
        let mut p = fp;
        loop {
            rt.heap.write(p + PAGE_ORIGIN, FROM_MARK);
            let next = rt.heap.read(p + PAGE_NEXT);
            if next == NONE_ADDR {
                fs_tail = p;
                break;
            }
            p = next;
        }
        debug_assert_eq!(rt.heap.page_base(e - 1), fs_tail);
    }
    let from_lobjs = rt.regions[from.0 as usize].lobjs;
    {
        let d = &mut rt.regions[from.0 as usize];
        d.fp = NONE_ADDR;
        d.pages = 0;
        d.used_words = 0;
        d.status = false;
        d.lobjs = 0;
    }
    if to == from {
        let page = rt.heap.alloc_page(from.0 as u64);
        let d = &mut rt.regions[from.0 as usize];
        d.fp = page;
        d.a = page + PAGE_HDR;
        d.e = page + pw;
        d.pages = 1;
    }

    let mut st = GcState::new();
    let pol = GenEvac { to };
    // Roots: the stack, plus remembered mutated fields (old→young).
    for &slot in root_slots {
        let v = rt.stack[slot];
        rt.stack[slot] = evacuate_with(rt, &mut st, v, pol);
    }
    for &addr in remembered.iter() {
        let v = rt.read_addr(addr);
        let nv = evacuate_with(rt, &mut st, v, pol);
        rt.write_addr(addr, nv);
    }
    drain_with(rt, &mut st, pol);
    // Unmark finite-region values.
    unmark_scan_buffer(rt, &st.scan_buffer);
    // Sweep the from-region's large objects: survivors move to `to`.
    let mut head = from_lobjs;
    while head != 0 {
        let id = head - 1;
        let (next, marked) = {
            let o = rt.lobjs.get(id);
            (o.next, o.marked)
        };
        head = next;
        if marked {
            let to_head = rt.regions[to.0 as usize].lobjs;
            let o = rt.lobjs.get_mut(id);
            o.next = to_head;
            rt.regions[to.0 as usize].lobjs = id + 1;
        } else {
            rt.lobjs.free(id);
        }
    }
    // Clear remaining marks (including large objects owned by other
    // generations that were only visited).
    for i in 0..rt.regions.len() {
        let mut h = rt.regions[i].lobjs;
        while h != 0 {
            let o = rt.lobjs.get_mut(h - 1);
            o.marked = false;
            h = o.next;
        }
    }
    // Release the from-space.
    if fp != NONE_ADDR {
        rt.heap.free_run(fp, fs_tail + 1, pages);
    }
    rt.stats.gc_copied_words += st.copied;
}

/// Shared scan-loop state (paper §2.5). The serial, generational and
/// sliced collectors all use one of these; the parallel collector keeps
/// one per worker.
#[derive(Debug)]
pub(crate) struct GcState {
    /// Scan pointers of partially-scanned regions (at most one per region).
    pub(crate) scan_stack: Vec<u64>,
    /// Stack slots of finite-region boxes: unscanned tail + all entries for
    /// the final unmarking pass.
    pub(crate) scan_buffer: Vec<usize>,
    pub(crate) sb_next: usize,
    /// Large arrays queued for traversal.
    pub(crate) lobj_queue: Vec<u32>,
    pub(crate) lq_next: usize,
    pub(crate) copied: u64,
}

impl GcState {
    pub(crate) fn new() -> Self {
        GcState {
            scan_stack: Vec::new(),
            scan_buffer: Vec::new(),
            sb_next: 0,
            lobj_queue: Vec::new(),
            lq_next: 0,
            copied: 0,
        }
    }
}

/// Evacuates one value (paper §2.5 `evacuate`): returns the value to store
/// in place of `v`. The [`EvacPolicy`] decides which heap objects move and
/// where to; everything else (scalars, constants, finite-region boxes,
/// large objects) is handled identically in every collector variant.
pub(crate) fn evacuate_with<P: EvacPolicy>(rt: &mut Rt, st: &mut GcState, v: Word, p: P) -> Word {
    if !is_ptr(v) {
        return v;
    }
    let addr = ptr_addr(v);
    match space_of(addr) {
        // Constants are not traversed, updated, or copied.
        Space::Data => v,
        // Values in finite regions are traversed in place: mark as
        // constant, queue on the scan buffer (traversal is postponed).
        Space::Stack => {
            let slot = (addr - STACK_BASE) as usize;
            let mut tag = Tag::decode(rt.stack[slot]);
            if !tag.mark {
                tag.mark = true;
                rt.stack[slot] = tag.encode();
                st.scan_buffer.push(slot);
            }
            v
        }
        // Large objects are traversed (arrays) but never copied.
        Space::Large => {
            let id = Lobjs::id_of(addr);
            let o = rt.lobjs.get_mut(id);
            if !o.marked {
                o.marked = true;
                if matches!(o.data, LData::Arr(_)) {
                    st.lobj_queue.push(id);
                }
            }
            v
        }
        Space::Heap => {
            let page = rt.heap.page_base(addr);
            let Some(r) = p.heap_dest(rt, page) else {
                return v; // policy says: stays put
            };
            let w = rt.heap.read(addr);
            if is_ptr(w) {
                // Forward pointer: already evacuated.
                return w;
            }
            let tag = Tag::decode(w);
            debug_assert!(tag.kind != Kind::Sentinel, "evacuating page slack");
            let n = tag.box_words();
            let new_addr = rt.alloc_words(r, n);
            for i in 0..n {
                let word = rt.heap.read(addr + i);
                rt.heap.write(new_addr + i, word);
            }
            rt.heap.write(addr, ptr(new_addr));
            st.copied += n;
            let d = &mut rt.regions[r.0 as usize];
            if !d.status {
                d.status = true;
                st.scan_stack.push(new_addr);
            }
            ptr(new_addr)
        }
    }
}

/// Scans a finite-region box in place (fields updated, value not moved).
pub(crate) fn scan_stack_box_with<P: EvacPolicy>(rt: &mut Rt, st: &mut GcState, slot: usize, p: P) {
    let tag = Tag::decode(rt.stack[slot]);
    if !tag.scannable() {
        return;
    }
    for i in 0..tag.size as usize {
        let v = rt.stack[slot + 1 + i];
        rt.stack[slot + 1 + i] = evacuate_with(rt, st, v, p);
    }
}

/// Scans a large array in place.
pub(crate) fn scan_large_array_with<P: EvacPolicy>(rt: &mut Rt, st: &mut GcState, id: u32, p: P) {
    let len = match &rt.lobjs.get(id).data {
        LData::Arr(a) => a.len(),
        LData::Str(_) => return,
    };
    for i in 0..len {
        let v = match &rt.lobjs.get(id).data {
            LData::Arr(a) => a[i],
            LData::Str(_) => unreachable!(),
        };
        let nv = evacuate_with(rt, st, v, p);
        match &mut rt.lobjs.get_mut(id).data {
            LData::Arr(a) => a[i] = nv,
            LData::Str(_) => unreachable!(),
        }
    }
}

/// Cheney's loop over a single region (paper §2.3 `cheney`): scans from
/// `s` until the scan pointer reaches the region's allocation pointer,
/// hopping page boundaries and skipping slack sentinels. The region is
/// identified through the origin pointer of the scan page — for the
/// generational policy that is always the promotion target, whose pages
/// are stamped with its id.
pub(crate) fn cheney_region_with<P: EvacPolicy>(rt: &mut Rt, st: &mut GcState, mut s: u64, p: P) {
    let pw = rt.heap.page_words() as u64;
    let page = rt.heap.page_base(s);
    let r = RegionId(rt.heap.read(page + PAGE_ORIGIN) as u32);
    // The page end is maintained incrementally across hops instead of
    // re-deriving the page base from `s` for every object scanned.
    let mut page_end = page + pw;
    loop {
        if s == rt.regions[r.0 as usize].a {
            break;
        }
        // At the exact page end, move to the next page in the chain.
        if s == page_end {
            let next = rt.heap.read(page_end - pw + PAGE_NEXT);
            debug_assert_ne!(next, NONE_ADDR, "scan ran past the region");
            s = next + PAGE_HDR;
            page_end = next + pw;
            continue;
        }
        let w = rt.heap.read(s);
        let tag = Tag::decode(w);
        if tag.kind == Kind::Sentinel {
            // Page slack: skip to the next page.
            let next = rt.heap.read(page_end - pw + PAGE_NEXT);
            debug_assert_ne!(next, NONE_ADDR, "sentinel on the last page");
            s = next + PAGE_HDR;
            page_end = next + pw;
            continue;
        }
        if tag.scannable() {
            for i in 0..tag.size as u64 {
                let v = rt.heap.read(s + 1 + i);
                let nv = evacuate_with(rt, st, v, p);
                rt.heap.write(s + 1 + i, nv);
            }
        }
        s += tag.box_words();
    }
    rt.regions[r.0 as usize].status = false;
}

/// `collect_regions` (paper §2.5): alternate between the scan buffer
/// (finite regions and large objects, traversed in place) and the scan
/// stack (one region at a time) until both are exhausted.
pub(crate) fn drain_with<P: EvacPolicy>(rt: &mut Rt, st: &mut GcState, p: P) {
    loop {
        let mut progressed = false;
        while st.sb_next < st.scan_buffer.len() {
            progressed = true;
            let slot = st.scan_buffer[st.sb_next];
            st.sb_next += 1;
            scan_stack_box_with(rt, st, slot, p);
        }
        while st.lq_next < st.lobj_queue.len() {
            progressed = true;
            let id = st.lobj_queue[st.lq_next];
            st.lq_next += 1;
            scan_large_array_with(rt, st, id, p);
        }
        if let Some(s) = st.scan_stack.pop() {
            progressed = true;
            cheney_region_with(rt, st, s, p);
        }
        if !progressed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RtConfig;

    fn rt() -> Rt {
        Rt::new(RtConfig {
            initial_pages: 16,
            ..RtConfig::rgt()
        })
    }

    /// Builds a list of `n` cons cells (tag + head + tail) in region `r`,
    /// returning the head pointer. Tail of the last cell is scalar 1
    /// ("nil").
    fn build_list(rt: &mut Rt, r: RegionId, n: i64) -> Word {
        let mut tail = rt.tag_int(0); // nil as scalar
        for i in (1..=n).rev() {
            let head = rt.tag_int(i);
            tail = rt.alloc_boxed(r, Tag::con(1, 2), &[head, tail]);
        }
        tail
    }

    fn list_sum(rt: &Rt, mut v: Word) -> i64 {
        let mut sum = 0;
        while is_ptr(v) {
            sum += rt.untag_int(rt.field(v, 0));
            v = rt.field(v, 1);
        }
        sum
    }

    #[test]
    fn collector_shrinks_an_oversized_heap_with_hysteresis() {
        let mut rt = rt();
        let r = rt.letregion(0);
        // Blow the heap up with garbage, then drop it all.
        for _ in 0..200 {
            let _ = build_list(&mut rt, r, 200);
        }
        let live = build_list(&mut rt, r, 5);
        rt.stack.push(live);
        let root = rt.stack.len() - 1;
        let before = rt.heap.total_pages();
        collect(&mut rt, &[root], &mut []);
        let live_pages: usize = rt.regions.iter().map(|d| d.pages).sum();
        let want = ((live_pages as f64) * rt.config.heap_to_live_ratio).ceil() as usize;
        let floor = want.max(rt.config.initial_pages);
        let cap = ((floor as f64) * rt.config.heap_shrink_factor.unwrap()).ceil() as usize;
        assert!(before > cap, "setup must overshoot the hysteresis cap");
        // Shrink fired, but only the free tail is physically releasable —
        // this collection's to-space came from whatever pages were free at
        // the flip, which may sit high in the arena.
        let after_first = rt.heap.total_pages();
        assert!(after_first < before, "first collection must release pages");
        assert_eq!(list_sum(&rt, rt.stack[root]), 15);
        rt.check_page_conservation().unwrap();

        // The next collection re-sorts the (now huge) free-list, places
        // to-space at the bottom of the arena, and the release reaches the
        // growth target exactly.
        collect(&mut rt, &[root], &mut []);
        assert_eq!(rt.heap.total_pages(), floor, "shrink-to-target");
        rt.check_page_conservation().unwrap();

        // Within the hysteresis band nothing more is released.
        collect(&mut rt, &[root], &mut []);
        assert!(rt.heap.total_pages() >= floor, "no thrash inside the band");
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn tight_shrink_factor_does_not_thrash() {
        // factor = 1.0 collapses cap onto floor, so without the minimum
        // hysteresis band a live set oscillating by one page would
        // release the arena tail on every down-cycle and re-grow it on
        // every up-cycle. 1300 vs 1385 cons cells is exactly one page of
        // live-set movement (≈ 3 words per cell, ≈ 84 cells per page).
        let mut rt = Rt::new(RtConfig {
            initial_pages: 16,
            heap_shrink_factor: Some(1.0),
            ..RtConfig::rgt()
        });
        let r = rt.letregion(0);
        let live = build_list(&mut rt, r, 1385);
        rt.stack.push(live);
        let root = rt.stack.len() - 1;
        // Converge onto the target.
        collect(&mut rt, &[root], &mut []);
        collect(&mut rt, &[root], &mut []);
        let (grows, shrinks) = (rt.stats.heap_grows, rt.stats.heap_shrinks);
        for i in 0..10 {
            let n = if i % 2 == 0 { 1300 } else { 1385 };
            let live = build_list(&mut rt, r, n);
            rt.stack[root] = live;
            collect(&mut rt, &[root], &mut []);
        }
        assert_eq!(
            (rt.stats.heap_grows, rt.stats.heap_shrinks),
            (grows, shrinks),
            "one page of live-set noise thrashed the arena size"
        );
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn generational_major_shrinks_oversized_heap() {
        // The major path must sort the free-list before its flips, or the
        // tenured survivors land mid-arena and `release_tail` stops early.
        let mut rt = Rt::new(RtConfig {
            initial_pages: 16,
            heap_shrink_factor: Some(1.0),
            ..RtConfig::rgt()
        });
        let young = rt.letregion(0);
        let old = rt.letregion(0);
        for _ in 0..200 {
            let _ = build_list(&mut rt, young, 200);
        }
        let live = build_list(&mut rt, young, 5);
        rt.stack.push(live);
        let root = rt.stack.len() - 1;
        let before = rt.heap.total_pages();
        let mut remembered = Vec::new();
        collect_gen(&mut rt, &[root], &mut remembered, young, old, true);
        collect_gen(&mut rt, &[root], &mut remembered, young, old, true);
        let live_pages: usize = rt.regions.iter().map(|d| d.pages).sum();
        let want = ((live_pages as f64) * rt.config.heap_to_live_ratio).ceil() as usize;
        let floor = want.max(rt.config.initial_pages);
        assert!(before > floor + MIN_SHRINK_BAND, "setup must overshoot");
        assert!(
            rt.heap.total_pages() <= floor + MIN_SHRINK_BAND,
            "major collections must release the garbage tail: {} pages left, floor {floor}",
            rt.heap.total_pages()
        );
        assert_eq!(list_sum(&rt, rt.stack[root]), 15);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn collect_preserves_reachable_list() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let list = build_list(&mut rt, r, 500);
        rt.stack.push(list);
        let root = rt.stack.len() - 1;
        collect(&mut rt, &[root], &mut []);
        let list2 = rt.stack[root];
        assert_ne!(list, list2, "list must have been copied");
        assert_eq!(list_sum(&rt, list2), 500 * 501 / 2);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn collect_reclaims_garbage() {
        let mut rt = rt();
        let r = rt.letregion(0);
        // Allocate a lot of garbage plus one live list.
        for _ in 0..50 {
            let _ = build_list(&mut rt, r, 100);
        }
        let live = build_list(&mut rt, r, 10);
        rt.stack.push(live);
        let pages_before = rt.regions[0].pages;
        let root = rt.stack.len() - 1;
        collect(&mut rt, &[root], &mut []);
        let pages_after = rt.regions[0].pages;
        assert!(
            pages_after < pages_before / 4,
            "garbage not reclaimed: {pages_before} -> {pages_after}"
        );
        assert_eq!(list_sum(&rt, rt.stack[0]), 55);
    }

    #[test]
    fn values_stay_in_their_region() {
        let mut rt = rt();
        let r1 = rt.letregion(1);
        let r2 = rt.letregion(2);
        let a = rt.alloc_record(r1, &[rt.tag_int(1)]);
        let b = rt.alloc_record(r2, &[a]);
        rt.stack.push(b);
        collect(&mut rt, &[0], &mut []);
        let b2 = rt.stack[0];
        let a2 = rt.field(b2, 0);
        // Page origins must still point at the original region descriptors
        // (region ids 0 and 1).
        let pa = rt.heap.page_base(ptr_addr(a2));
        let pb = rt.heap.page_base(ptr_addr(b2));
        assert_eq!(rt.heap.read(pa + PAGE_ORIGIN), u64::from(r1.0));
        assert_eq!(rt.heap.read(pb + PAGE_ORIGIN), u64::from(r2.0));
        // Popping r2 then r1 must leave the structure intact in between.
        assert_eq!(rt.untag_int(rt.field(a2, 0)), 1);
        let _ = (r1, r2);
    }

    #[test]
    fn sharing_is_preserved() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let shared = rt.alloc_record(r, &[rt.tag_int(42)]);
        let p1 = rt.alloc_record(r, &[shared]);
        let p2 = rt.alloc_record(r, &[shared]);
        rt.stack.push(p1);
        rt.stack.push(p2);
        collect(&mut rt, &[0, 1], &mut []);
        let s1 = rt.field(rt.stack[0], 0);
        let s2 = rt.field(rt.stack[1], 0);
        assert_eq!(s1, s2, "shared value copied once");
        assert_eq!(rt.untag_int(rt.field(s1, 0)), 42);
    }

    #[test]
    fn cycles_via_ref_cells_terminate() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let cell = rt.alloc_boxed(r, Tag::reference(), &[rt.tag_int(0)]);
        // Tie the knot: the cell points to a record that points back.
        let rec = rt.alloc_record(r, &[cell]);
        rt.set_field(cell, 0, rec);
        rt.stack.push(cell);
        collect(&mut rt, &[0], &mut []);
        let cell2 = rt.stack[0];
        let rec2 = rt.field(cell2, 0);
        assert_eq!(rt.field(rec2, 0), cell2, "cycle preserved");
    }

    #[test]
    fn finite_region_values_marked_and_unmarked() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let inner = rt.alloc_record(r, &[rt.tag_int(7)]);
        // A finite-region box on the stack: tag + one field.
        let tag = Tag::record(1);
        rt.stack.push(tag.encode());
        rt.stack.push(inner);
        let box_ptr = ptr(STACK_BASE);
        rt.stack.push(box_ptr); // a root referring to the finite box
        collect(&mut rt, &[2], &mut []);
        // Not moved:
        assert_eq!(rt.stack[2], box_ptr);
        // Mark removed:
        assert!(!Tag::decode(rt.stack[0]).mark);
        // Inner heap value evacuated and the field updated:
        let inner2 = rt.stack[1];
        assert_ne!(inner2, inner);
        assert_eq!(rt.untag_int(rt.field(inner2, 0)), 7);
    }

    #[test]
    fn large_objects_traversed_not_copied_and_swept() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let elem = rt.alloc_record(r, &[rt.tag_int(5)]);
        let arr = rt.alloc_array(r, 3, rt.tag_int(0));
        let a0 = rt.arr_elem_addr(arr, 0);
        rt.write_addr(a0, elem);
        let dead = rt.alloc_array(r, 100, rt.tag_int(0));
        let _ = dead;
        rt.stack.push(arr);
        assert_eq!(rt.lobjs.live_count(), 2);
        collect(&mut rt, &[0], &mut []);
        assert_eq!(rt.stack[0], arr, "large object not moved");
        assert_eq!(rt.lobjs.live_count(), 1, "dead array swept");
        let elem2 = rt.read_addr(rt.arr_elem_addr(arr, 0));
        assert_eq!(rt.untag_int(rt.field(elem2, 0)), 5);
        assert_eq!(rt.stats.gc_records[0].lobjs_freed, 1);
    }

    #[test]
    fn constants_untouched() {
        let mut rt = rt();
        let _r = rt.letregion(0);
        let c = rt.intern_const_str("const");
        rt.stack.push(c);
        collect(&mut rt, &[0], &mut []);
        assert_eq!(rt.stack[0], c);
        assert_eq!(rt.str_val(c), "const");
    }

    #[test]
    fn multi_region_breadth_first_with_cross_pointers() {
        let mut rt = rt();
        let r1 = rt.letregion(1);
        let r2 = rt.letregion(2);
        // Build an alternating chain across regions.
        let mut v = rt.tag_int(0);
        for i in 0..200 {
            let r = if i % 2 == 0 { r1 } else { r2 };
            v = rt.alloc_boxed(r, Tag::con(1, 2), &[rt.tag_int(1), v]);
        }
        rt.stack.push(v);
        collect(&mut rt, &[0], &mut []);
        assert_eq!(list_sum(&rt, rt.stack[0]), 200);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn gc_accounting_records_are_consistent() {
        let mut rt = rt();
        let r = rt.letregion(0);
        for _ in 0..20 {
            let _ = build_list(&mut rt, r, 200);
        }
        let live = build_list(&mut rt, r, 50);
        rt.stack.push(live);
        collect(&mut rt, &[0], &mut []);
        let rec = rt.stats.gc_records[0];
        assert!(rec.from_pages > rec.live_pages);
        assert!(rec.ri_fraction().is_some());
        let ri = rec.ri_fraction().unwrap();
        // Everything was reclaimed by GC here (no region was popped):
        assert!(ri < 0.2, "ri = {ri}");
        // Heap-to-live ratio maintained.
        assert!(
            rt.heap.total_pages() as f64 >= rt.config.heap_to_live_ratio * rec.live_pages as f64
        );
    }

    #[test]
    fn generational_minor_promotes_survivors() {
        let mut rt = rt();
        let young = rt.letregion(0);
        let old = rt.letregion(1);
        let live = build_list(&mut rt, young, 50);
        for _ in 0..20 {
            let _ = build_list(&mut rt, young, 100);
        }
        rt.stack.push(live);
        collect_gen(&mut rt, &[0], &mut Vec::new(), young, old, false);
        // Survivors moved to the old generation; the nursery is empty.
        assert_eq!(rt.regions[young.0 as usize].used_words, 0);
        assert!(rt.regions[old.0 as usize].used_words > 0);
        assert_eq!(list_sum(&rt, rt.stack[0]), 50 * 51 / 2);
        assert_eq!(rt.stats.minor_gcs, 1);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn generational_remembered_set_rescues_old_to_young() {
        let mut rt = rt();
        let young = rt.letregion(0);
        let old = rt.letregion(1);
        // An old cell pointing at young data, reachable ONLY through it.
        let cell = rt.alloc_boxed(old, Tag::reference(), &[rt.tag_int(0)]);
        collect_gen(&mut rt, &[], &mut Vec::new(), young, old, false);
        let young_list = build_list(&mut rt, young, 10);
        rt.set_field(cell, 0, young_list);
        let field_addr = kit_field_addr(&rt, cell);
        rt.stack.push(cell);
        let mut remembered = vec![field_addr];
        collect_gen(&mut rt, &[0], &mut remembered, young, old, true);
        let v = rt.field(rt.stack[0], 0);
        assert_eq!(
            list_sum(&rt, v),
            55,
            "young data reached only via the barrier"
        );
    }

    fn kit_field_addr(rt: &Rt, v: Word) -> u64 {
        ptr_addr(v) + rt.hdr_words()
    }

    #[test]
    fn generational_major_compacts_tenured() {
        let mut rt = rt();
        let young = rt.letregion(0);
        let old = rt.letregion(1);
        // Promote a lot of garbage into tenured, then major-collect.
        for _ in 0..20 {
            let _ = build_list(&mut rt, young, 200);
            collect_gen(&mut rt, &[], &mut Vec::new(), young, old, false);
        }
        let live = build_list(&mut rt, young, 10);
        rt.stack.push(live);
        collect_gen(&mut rt, &[0], &mut Vec::new(), young, old, true);
        assert_eq!(rt.stats.major_gcs, 1);
        assert!(
            rt.regions[old.0 as usize].pages <= 2,
            "tenured should compact: {} pages",
            rt.regions[old.0 as usize].pages
        );
        assert_eq!(list_sum(&rt, rt.stack[0]), 55);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn empty_roots_collects_everything() {
        let mut rt = rt();
        let r = rt.letregion(0);
        for _ in 0..10 {
            let _ = build_list(&mut rt, r, 500);
        }
        collect(&mut rt, &[], &mut []);
        assert_eq!(rt.regions[0].pages, 1);
        assert_eq!(rt.regions[0].used_words, 0);
    }

    #[test]
    fn second_collection_after_mutation() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let l = build_list(&mut rt, r, 100);
        rt.stack.push(l);
        collect(&mut rt, &[0], &mut []);
        // Mutate: extend the list from the survivor.
        let head = rt.stack[0];
        let longer = rt.alloc_boxed(r, Tag::con(1, 2), &[rt.tag_int(1000), head]);
        rt.stack[0] = longer;
        collect(&mut rt, &[0], &mut []);
        assert_eq!(list_sum(&rt, rt.stack[0]), 100 * 101 / 2 + 1000);
    }

    #[test]
    fn evacuation_into_region_being_scanned() {
        // A value in r1 pointing to r2 pointing back to r1 exercises
        // re-activation of a drained region.
        let mut rt = rt();
        let r1 = rt.letregion(1);
        let r2 = rt.letregion(2);
        let deep1 = rt.alloc_record(r1, &[rt.tag_int(11)]);
        let mid = rt.alloc_record(r2, &[deep1]);
        let top = rt.alloc_record(r1, &[mid]);
        rt.stack.push(top);
        collect(&mut rt, &[0], &mut []);
        let top2 = rt.stack[0];
        let mid2 = rt.field(top2, 0);
        let deep2 = rt.field(mid2, 0);
        assert_eq!(rt.untag_int(rt.field(deep2, 0)), 11);
        let _ = (r1, r2);
    }
}
