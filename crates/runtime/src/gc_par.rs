//! Parallel Cheney-for-regions (DESIGN.md §6g): the full collection of
//! [`crate::gc::collect`] partitioned across a pool of scoped worker
//! threads when `RtConfig::gc_workers > 1`.
//!
//! # Scheme
//!
//! Live regions are partitioned across workers as *contiguous region-id
//! ranges* of roughly equal pre-flip page weight (see [`partition`] for
//! why contiguity, not just balance, is the point). Each worker *owns*
//! its regions' to-space bump cursors outright, so the copy fast path
//! needs no atomics at all; stack (finite-region) boxes are owned by
//! `slot % workers` and large objects by `id % workers`.
//!
//! Work proceeds in **rounds**. Within a round a worker only touches state
//! it owns: it drains its inbox of cross-owner tasks, then runs the
//! ordinary region scan loop over its own regions to a fixpoint. A pointer
//! whose target another worker owns is *always deferred* — the location is
//! left unchanged and a [`Task::Slot`] is sent to the owner, who resolves
//! the forward and writes the location back in the next round. (Peeking at
//! a possibly-installed forward mid-round would make the result depend on
//! cross-thread timing; deferral keeps every run of the collector
//! bit-identical.) Rounds are separated by barriers, and the leader merges
//! outboxes into inboxes in sender order, so each location has exactly one
//! writer per round and the whole schedule is deterministic.
//!
//! Forwarding pointers are installed with a compare-exchange on the header
//! word. Ownership guarantees a single writer, so the CAS can never be
//! contended — it is kept as a cheap guard (`debug_assert` on failure)
//! that the ownership protocol holds.
//!
//! # Page allocation
//!
//! Workers never touch the shared free-list: each is handed a private
//! pool of pages before spawning. The worst case is `2 × from-pages + 1`
//! per owned region (each closed page plus the page its overflowing
//! object opened are together more than half full), but real copies are
//! usually a small fraction of the from-space, so provisioning the worst
//! case up front would memset an arena-sized reserve on every
//! collection. Instead pools start at an eighth of the bound and the
//! collection runs in **passes**: a worker whose pool runs dry defers
//! the affected copies to itself (the same deferral used for
//! cross-owner pointers) and flags the exchange, the leader ends the
//! pass at the round boundary, and the coordinator — the only party
//! allowed to grow (and thereby move) the arena — doubles the dry
//! pools and re-spawns with the merged inboxes and each worker's
//! resume state. The arena never reallocates *while workers run*, raw
//! views are re-derived per pass, and grant sizes and starvation points
//! are functions of deterministic per-worker state, so the schedule
//! stays deterministic. Leftover pool pages return to the free-list
//! after the final join, in worker order.

use crate::gc;
use crate::heap::{PAGE_HDR, PAGE_NEXT, PAGE_ORIGIN};
use crate::lobj::{LData, Lobj, Lobjs};
use crate::region::{RegionDesc, RegionId};
use crate::rt::Rt;
use crate::value::{
    is_ptr, ptr, ptr_addr, space_of, Kind, Space, Tag, Word, NONE_ADDR, STACK_BASE,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A unit of cross-owner work, routed to the worker owning its target.
#[derive(Debug, Clone, Copy)]
enum Task {
    /// A location (heap to-space field, stack slot, or large-array
    /// element) holding a pointer into the receiver's territory: re-read
    /// it, evacuate the target, write the result back.
    Slot(u64),
    /// Mark (and queue for scanning) the finite-region box at this stack
    /// slot.
    StackBox(usize),
    /// Mark (and queue if an array) this large object.
    Lobj(u32),
}

/// Raw views into the runtime shared by all workers.
///
/// # Safety invariants
///
/// * The arena (`words`), stack, region vector and large-object table are
///   not resized while workers run: the heap is pre-grown to a worst-case
///   bound, the mutator is stopped, and the collector neither pushes
///   regions nor allocates/frees large objects.
/// * Every word is written by at most one worker per round: region pages
///   and descriptors by the region's owner, stack slots and large objects
///   by their modular owner, and deferred `Slot` locations by the target's
///   owner (the sender scanned the location in an earlier round and never
///   revisits it). Barriers between rounds provide the happens-before
///   edges for cross-round hand-offs.
#[derive(Clone, Copy)]
struct RawRt {
    words: *mut Word,
    stack: *mut Word,
    regions: *mut RegionDesc,
    lobjs: *mut Option<Lobj>,
    page_words: u64,
    page_data_words: u64,
}

unsafe impl Send for RawRt {}
unsafe impl Sync for RawRt {}

/// Round-exchange state: outboxes collected from workers, merged by the
/// barrier leader into per-worker inboxes in sender order.
struct Exchange {
    state: Mutex<ExchangeState>,
    barrier: Barrier,
    done: AtomicBool,
}

struct ExchangeState {
    outboxes: Vec<(usize, Vec<Vec<Task>>)>,
    inboxes: Vec<Vec<Task>>,
    /// Some worker ran out of pool pages this pass: the leader ends the
    /// pass at the next round boundary so the coordinator can refill.
    starved: bool,
}

impl Exchange {
    fn new(nworkers: usize) -> Self {
        Exchange {
            state: Mutex::new(ExchangeState {
                outboxes: Vec::with_capacity(nworkers),
                inboxes: vec![Vec::new(); nworkers],
                starved: false,
            }),
            barrier: Barrier::new(nworkers),
            done: AtomicBool::new(false),
        }
    }
}

/// Per-worker state carried across passes (pool refills): everything a
/// worker needs to resume exactly where the aborted pass stopped.
/// `scan_buffer` doubles as the record of marked stack slots for the
/// final unmark pass, and `pool[pool_next..]` as the leftover pages
/// returned to the free-list.
#[derive(Default)]
struct Paused {
    pool: Vec<u64>,
    pool_next: usize,
    scan_stack: Vec<u64>,
    scan_buffer: Vec<usize>,
    sb_next: usize,
    lobj_queue: Vec<u32>,
    lq_next: usize,
    copied: u64,
    starved: bool,
}

struct Worker<'a> {
    me: usize,
    nworkers: usize,
    raw: RawRt,
    /// Region id → owning worker.
    region_owner: &'a [usize],
    pool: Vec<u64>,
    pool_next: usize,
    outbox: Vec<Vec<Task>>,
    scan_stack: Vec<u64>,
    scan_buffer: Vec<usize>,
    sb_next: usize,
    lobj_queue: Vec<u32>,
    lq_next: usize,
    copied: u64,
    /// Pool exhausted: owned-heap copies are deferred to the next pass.
    starved: bool,
}

impl Worker<'_> {
    fn run(mut self, mut inbox: Vec<Task>, exch: &Exchange) -> Paused {
        loop {
            for t in std::mem::take(&mut inbox) {
                match t {
                    Task::Slot(loc) => self.evac_loc(loc),
                    Task::StackBox(slot) => self.mark_stack_box(slot),
                    Task::Lobj(id) => self.mark_lobj(id),
                }
            }
            self.drain_local();

            // ---- round exchange.
            let out = std::mem::replace(&mut self.outbox, vec![Vec::new(); self.nworkers]);
            {
                let mut g = exch.state.lock().unwrap();
                g.starved |= self.starved;
                g.outboxes.push((self.me, out));
            }
            if exch.barrier.wait().is_leader() {
                let mut g = exch.state.lock().unwrap();
                let mut obs = std::mem::take(&mut g.outboxes);
                // Sender order makes the merged inboxes independent of
                // which thread reached the lock first.
                obs.sort_by_key(|&(w, _)| w);
                let mut any = false;
                for (_, boxes) in obs {
                    for (dest, mut tasks) in boxes.into_iter().enumerate() {
                        if !tasks.is_empty() {
                            any = true;
                            g.inboxes[dest].append(&mut tasks);
                        }
                    }
                }
                // A starved worker defers work to itself, so `any` is
                // necessarily true with it; ending the pass leaves the
                // merged inboxes for the coordinator to hand back after
                // the refill.
                exch.done.store(!any || g.starved, Ordering::Release);
            }
            exch.barrier.wait();
            if exch.done.load(Ordering::Acquire) {
                break;
            }
            inbox = std::mem::take(&mut exch.state.lock().unwrap().inboxes[self.me]);
        }
        Paused {
            pool: self.pool,
            pool_next: self.pool_next,
            scan_stack: self.scan_stack,
            scan_buffer: self.scan_buffer,
            sb_next: self.sb_next,
            lobj_queue: self.lobj_queue,
            lq_next: self.lq_next,
            copied: self.copied,
            starved: self.starved,
        }
    }

    /// Evacuates the value stored at `loc`: targets this worker owns are
    /// handled immediately; everything else is deferred to its owner.
    fn evac_loc(&mut self, loc: u64) {
        let v = self.read_loc(loc);
        if !is_ptr(v) {
            return;
        }
        let addr = ptr_addr(v);
        match space_of(addr) {
            Space::Data => {}
            Space::Stack => {
                let slot = (addr - STACK_BASE) as usize;
                let owner = slot % self.nworkers;
                if owner == self.me {
                    self.mark_stack_box(slot);
                } else {
                    // The value itself does not change: marking is the
                    // owner's job, the location keeps `v`.
                    self.outbox[owner].push(Task::StackBox(slot));
                }
            }
            Space::Large => {
                let id = Lobjs::id_of(addr);
                let owner = id as usize % self.nworkers;
                if owner == self.me {
                    self.mark_lobj(id);
                } else {
                    self.outbox[owner].push(Task::Lobj(id));
                }
            }
            Space::Heap => {
                let page = addr & !(self.raw.page_words - 1);
                // Page origins of from-space pages are written at the flip
                // (before spawning) and read-only during the copy phase.
                let r = unsafe { *self.raw.words.add((page + PAGE_ORIGIN) as usize) } as u32;
                let owner = self.region_owner[r as usize];
                if owner != self.me {
                    self.outbox[owner].push(Task::Slot(loc));
                } else if self.pool_next < self.pool.len() {
                    let nv = self.copy_heap(addr, RegionId(r));
                    self.write_loc(loc, nv);
                } else {
                    // Out of to-space pages. A copy *might* not need one
                    // (the target may fit the current page, or already be
                    // forwarded), but gating on the pool keeps the check
                    // cheap: defer to ourselves and resolve after the
                    // coordinator refills the pool.
                    self.starved = true;
                    self.outbox[self.me].push(Task::Slot(loc));
                }
            }
        }
    }

    /// Copies the from-space object at `addr` into its own region `r`
    /// (owned by this worker), installing the forward pointer, or returns
    /// the existing forward.
    fn copy_heap(&mut self, addr: u64, r: RegionId) -> Word {
        unsafe {
            let hdr = self.raw.words.add(addr as usize);
            let w = *hdr;
            if is_ptr(w) {
                return w; // forwarded (by this worker, in an earlier task)
            }
            let tag = Tag::decode(w);
            debug_assert!(tag.kind != Kind::Sentinel, "evacuating page slack");
            let n = tag.box_words();
            let new_addr = self.alloc_words(r, n);
            for i in 0..n {
                *self.raw.words.add((new_addr + i) as usize) =
                    *self.raw.words.add((addr + i) as usize);
            }
            // Forwarding is installed with a CAS on the header word. The
            // ownership protocol makes this worker the only writer, so the
            // exchange can never be contended — the CAS stands as a cheap
            // runtime guard that the protocol holds.
            let res = (*(hdr as *const AtomicU64)).compare_exchange(
                w,
                ptr(new_addr),
                Ordering::Release,
                Ordering::Relaxed,
            );
            debug_assert!(
                res.is_ok(),
                "forward CAS contended: region ownership violated"
            );
            self.copied += n;
            let d = &mut *self.raw.regions.add(r.0 as usize);
            if !d.status {
                d.status = true;
                self.scan_stack.push(new_addr);
            }
            ptr(new_addr)
        }
    }

    /// Bump-allocates `n` words in owned region `r`, extending it with a
    /// page from the private pool when the current page is full (the
    /// worker-local mirror of `Rt::alloc_words` under `in_gc`).
    fn alloc_words(&mut self, r: RegionId, n: u64) -> u64 {
        debug_assert!(n <= self.raw.page_data_words);
        unsafe {
            let d = &mut *self.raw.regions.add(r.0 as usize);
            if d.a + n > d.e {
                if d.a < d.e {
                    // Slack sentinel so scans can skip the page tail.
                    *self.raw.words.add(d.a as usize) = Tag::sentinel_word();
                }
                let page = self.pool.get(self.pool_next).copied().unwrap_or_else(|| {
                    panic!("parallel GC worker {} exhausted its page pool", self.me)
                });
                self.pool_next += 1;
                let pw = self.raw.page_words;
                *self.raw.words.add((page + PAGE_NEXT) as usize) = NONE_ADDR;
                *self.raw.words.add((page + PAGE_ORIGIN) as usize) = u64::from(r.0);
                let d = &mut *self.raw.regions.add(r.0 as usize);
                let last = d.e - pw;
                *self.raw.words.add((last + PAGE_NEXT) as usize) = page;
                d.a = page + PAGE_HDR;
                d.e = page + pw;
                d.pages += 1;
            }
            let d = &mut *self.raw.regions.add(r.0 as usize);
            let addr = d.a;
            d.a += n;
            d.used_words += n;
            addr
        }
    }

    /// Marks the finite-region box at owned `slot` and queues it for
    /// scanning (idempotent via the mark bit).
    fn mark_stack_box(&mut self, slot: usize) {
        debug_assert_eq!(slot % self.nworkers, self.me);
        unsafe {
            let p = self.raw.stack.add(slot);
            let mut tag = Tag::decode(*p);
            if !tag.mark {
                tag.mark = true;
                *p = tag.encode();
                self.scan_buffer.push(slot);
            }
        }
    }

    /// Marks the owned large object `id`, queueing arrays for traversal.
    fn mark_lobj(&mut self, id: u32) {
        debug_assert_eq!(id as usize % self.nworkers, self.me);
        let o = unsafe {
            (*self.raw.lobjs.add(id as usize))
                .as_mut()
                .expect("dangling large-object id")
        };
        if !o.marked {
            o.marked = true;
            if matches!(o.data, LData::Arr(_)) {
                self.lobj_queue.push(id);
            }
        }
    }

    /// Drains owned work to a fixpoint: the local scan buffer, large-array
    /// queue and region scan stack (the per-worker `collect_regions`).
    fn drain_local(&mut self) {
        loop {
            let mut progressed = false;
            while self.sb_next < self.scan_buffer.len() {
                progressed = true;
                let slot = self.scan_buffer[self.sb_next];
                self.sb_next += 1;
                let tag = Tag::decode(unsafe { *self.raw.stack.add(slot) });
                if tag.scannable() {
                    for i in 0..u64::from(tag.size) {
                        self.evac_loc(STACK_BASE + slot as u64 + 1 + i);
                    }
                }
            }
            while self.lq_next < self.lobj_queue.len() {
                progressed = true;
                let id = self.lobj_queue[self.lq_next];
                self.lq_next += 1;
                let len =
                    match unsafe { &(*self.raw.lobjs.add(id as usize)).as_ref().unwrap().data } {
                        LData::Arr(a) => a.len(),
                        LData::Str(_) => 0,
                    };
                let base = Lobjs::addr_of(id);
                for i in 0..len {
                    self.evac_loc(base + i as u64);
                }
            }
            if let Some(s) = self.scan_stack.pop() {
                progressed = true;
                self.cheney_region(s);
            }
            if !progressed {
                break;
            }
        }
    }

    /// Cheney's loop over one owned region, from scan pointer `s` to the
    /// region's allocation pointer.
    fn cheney_region(&mut self, mut s: u64) {
        let pw = self.raw.page_words;
        let page = s & !(pw - 1);
        let r = unsafe { *self.raw.words.add((page + PAGE_ORIGIN) as usize) } as u32;
        let mut page_end = page + pw;
        loop {
            let d = unsafe { &mut *self.raw.regions.add(r as usize) };
            if s == d.a {
                d.status = false;
                return;
            }
            if s == page_end {
                let next = unsafe { *self.raw.words.add((page_end - pw + PAGE_NEXT) as usize) };
                debug_assert_ne!(next, NONE_ADDR, "scan ran past the region");
                s = next + PAGE_HDR;
                page_end = next + pw;
                continue;
            }
            let w = unsafe { *self.raw.words.add(s as usize) };
            let tag = Tag::decode(w);
            if tag.kind == Kind::Sentinel {
                let next = unsafe { *self.raw.words.add((page_end - pw + PAGE_NEXT) as usize) };
                debug_assert_ne!(next, NONE_ADDR, "sentinel on the last page");
                s = next + PAGE_HDR;
                page_end = next + pw;
                continue;
            }
            if tag.scannable() {
                for i in 0..u64::from(tag.size) {
                    self.evac_loc(s + 1 + i);
                }
            }
            s += tag.box_words();
        }
    }

    fn read_loc(&self, loc: u64) -> Word {
        unsafe {
            match space_of(loc) {
                Space::Heap => *self.raw.words.add(loc as usize),
                Space::Stack => *self.raw.stack.add((loc - STACK_BASE) as usize),
                Space::Large => {
                    let id = Lobjs::id_of(loc);
                    let off = (loc - Lobjs::addr_of(id)) as usize;
                    match &(*self.raw.lobjs.add(id as usize)).as_ref().unwrap().data {
                        LData::Arr(a) => a[off],
                        LData::Str(_) => unreachable!("word location in string"),
                    }
                }
                Space::Data => unreachable!("no mutable locations in the data segment"),
            }
        }
    }

    fn write_loc(&mut self, loc: u64, v: Word) {
        unsafe {
            match space_of(loc) {
                Space::Heap => *self.raw.words.add(loc as usize) = v,
                Space::Stack => *self.raw.stack.add((loc - STACK_BASE) as usize) = v,
                Space::Large => {
                    let id = Lobjs::id_of(loc);
                    let off = (loc - Lobjs::addr_of(id)) as usize;
                    match &mut (*self.raw.lobjs.add(id as usize)).as_mut().unwrap().data {
                        LData::Arr(a) => a[off] = v,
                        LData::Str(_) => unreachable!("word location in string"),
                    }
                }
                Space::Data => unreachable!("no mutable locations in the data segment"),
            }
        }
    }
}

/// Splits the regions into `nworkers` *contiguous id ranges* of roughly
/// equal from-space weight. Contiguity is the point, not just balance:
/// regions allocated together (nested `letregion`s — a list's spine and
/// its element cells, say) overwhelmingly point into each other, and a
/// pointer between two regions on different workers costs a whole
/// exchange round per hop. Keeping id neighbourhoods on one worker turns
/// those chains into local scan work; greedy bin-packing, by contrast,
/// deliberately separates the two biggest regions and serialises every
/// spine→cell link into a round.
fn partition(weights: &[usize], nworkers: usize) -> Vec<usize> {
    let total: usize = weights.iter().map(|w| w + 1).sum();
    let mut owner = vec![0usize; weights.len()];
    let mut acc = 0usize;
    let mut w = 0usize;
    for (r, &weight) in weights.iter().enumerate() {
        // Close the range once it has reached its proportional share of
        // the remaining weight (even an empty region costs its fresh
        // to-space page).
        owner[r] = w;
        acc += weight + 1;
        if acc * nworkers >= total * (w + 1) && w + 1 < nworkers {
            w += 1;
        }
    }
    owner
}

/// Routes one root location into the initial inboxes (the same
/// classification the workers use, run once single-threaded).
fn route_root(rt: &Rt, loc: u64, owner: &[usize], nworkers: usize, inboxes: &mut [Vec<Task>]) {
    let v = rt.stack[(loc - STACK_BASE) as usize];
    if !is_ptr(v) {
        return;
    }
    let addr = ptr_addr(v);
    match space_of(addr) {
        Space::Data => {}
        Space::Stack => {
            let slot = (addr - STACK_BASE) as usize;
            inboxes[slot % nworkers].push(Task::StackBox(slot));
        }
        Space::Large => {
            let id = Lobjs::id_of(addr);
            inboxes[id as usize % nworkers].push(Task::Lobj(id));
        }
        Space::Heap => {
            let page = rt.heap.page_base(addr);
            let r = rt.heap.read(page + PAGE_ORIGIN) as usize;
            inboxes[owner[r]].push(Task::Slot(loc));
        }
    }
}

/// One parallel full collection; the counterpart of [`gc::collect`] for
/// `gc_workers > 1`. The mutator-visible result (surviving values, region
/// contents, copied-word count) is identical to the serial collector's up
/// to object addresses; the collector itself is deterministic from run to
/// run at a fixed configuration.
pub(crate) fn collect_parallel(rt: &mut Rt, root_slots: &[usize], extra_roots: &mut [Word]) {
    let t0 = std::time::Instant::now();
    let nworkers = rt.config.gc_workers;
    rt.in_gc = true;
    rt.flush_alloc_cache();
    if rt.config.heap_shrink_factor.is_some() {
        rt.heap.sort_free_list();
    }

    // Extra roots (VM registers) become addressable stack slots for the
    // duration, so they can be task targets like any other root.
    let extra_base = rt.stack.len();
    rt.stack.extend_from_slice(extra_roots);

    let flip = gc::flip_all(rt);
    let region_owner = partition(&flip.region_from_pages, nworkers);

    // ---- to-space budget per worker: the worst case (`2 × from-pages
    // + 1` per owned region) caps what a worker can ever be granted,
    // but copies are typically a small fraction of the from-space, so
    // grants start at an eighth of the cap and double on starvation.
    let mut needs = vec![0usize; nworkers];
    for (r, &fp) in flip.region_from_pages.iter().enumerate() {
        if fp > 0 {
            needs[region_owner[r]] += 2 * fp + 1;
        }
    }

    // ---- initial inboxes from the root set.
    let mut inboxes: Vec<Vec<Task>> = vec![Vec::new(); nworkers];
    for &slot in root_slots {
        route_root(
            rt,
            STACK_BASE + slot as u64,
            &region_owner,
            nworkers,
            &mut inboxes,
        );
    }
    for i in 0..extra_roots.len() {
        let loc = STACK_BASE + (extra_base + i) as u64;
        route_root(rt, loc, &region_owner, nworkers, &mut inboxes);
    }

    // ---- worker passes. Each pass runs the round protocol to a global
    // fixpoint or to the first round in which some worker ran out of
    // pool pages (it defers the affected copies to itself, so nothing is
    // lost). Between passes the coordinator — which, unlike the workers,
    // may grow the arena and move it — refills the dry pools and
    // re-derives the raw views. Grant sizes, starvation points and the
    // round schedule are all functions of deterministic per-worker
    // state, so the collector remains deterministic from run to run.
    let mut given = vec![0usize; nworkers];
    let mut resume: Vec<Paused> = (0..nworkers).map(|_| Paused::default()).collect();
    loop {
        let mut grants = vec![0usize; nworkers];
        for w in 0..nworkers {
            grants[w] = if given[w] == 0 {
                needs[w].min((needs[w] / 8).max(8))
            } else if resume[w].starved {
                let rest = needs[w] - given[w];
                assert!(rest > 0, "worker {w} starved beyond the worst-case bound");
                rest.min(given[w])
            } else {
                0
            };
        }
        let total_grant: usize = grants.iter().sum();
        if rt.heap.free_pages() < total_grant {
            let deficit = total_grant - rt.heap.free_pages();
            rt.heap.grow(deficit);
            if rt.config.heap_shrink_factor.is_some() {
                // Keep to-space at low addresses for the shrink policy.
                rt.heap.sort_free_list();
            }
        }
        for (w, paused) in resume.iter_mut().enumerate() {
            for _ in 0..grants[w] {
                paused.pool.push(
                    rt.heap
                        .pop_free_page()
                        .expect("grant sizing covers the free-list"),
                );
            }
            given[w] += grants[w];
            paused.starved = false;
        }

        let raw = RawRt {
            words: rt.heap.words.as_mut_ptr(),
            stack: rt.stack.as_mut_ptr(),
            regions: rt.regions.as_mut_ptr(),
            lobjs: rt.lobjs.table.as_mut_ptr(),
            page_words: rt.heap.page_words() as u64,
            page_data_words: rt.config.page_data_words() as u64,
        };
        let exch = Exchange::new(nworkers);
        let owner_ref = &region_owner;
        let exch_ref = &exch;
        let pass_in = std::mem::take(&mut inboxes);
        resume = std::thread::scope(|s| {
            let handles: Vec<_> = resume
                .drain(..)
                .zip(pass_in)
                .enumerate()
                .map(|(w, (paused, inbox0))| {
                    let worker = Worker {
                        me: w,
                        nworkers,
                        raw,
                        region_owner: owner_ref,
                        pool: paused.pool,
                        pool_next: paused.pool_next,
                        outbox: vec![Vec::new(); nworkers],
                        scan_stack: paused.scan_stack,
                        scan_buffer: paused.scan_buffer,
                        sb_next: paused.sb_next,
                        lobj_queue: paused.lobj_queue,
                        lq_next: paused.lq_next,
                        copied: paused.copied,
                        starved: false,
                    };
                    s.spawn(move || worker.run(inbox0, exch_ref))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        if !resume.iter().any(|p| p.starved) {
            break;
        }
        // The aborted pass's leader already merged every outbox; the
        // undelivered tasks become the next pass's inboxes.
        inboxes = std::mem::take(&mut exch.state.lock().unwrap().inboxes);
    }

    // ---- merge worker outputs in worker order (deterministic).
    let mut copied = 0u64;
    let mut marked = Vec::new();
    for out in &resume {
        copied += out.copied;
        marked.extend_from_slice(&out.scan_buffer);
    }
    gc::unmark_scan_buffer(rt, &marked);
    // Return unused pool pages; iteration order is fixed, so the
    // free-list layout stays deterministic.
    for out in resume.iter().rev() {
        for &p in out.pool[out.pool_next..].iter().rev() {
            rt.heap.push_free_page(p);
        }
    }
    let lobjs_freed = gc::sweep_lobjs_all(rt);

    // Write evacuated extra roots back to their registers and drop the
    // temporary slots.
    for (i, v) in extra_roots.iter_mut().enumerate() {
        *v = rt.stack[extra_base + i];
    }
    rt.stack.truncate(extra_base);

    gc::finish_collection(rt, &flip, copied, lobjs_freed, t0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RtConfig;
    use crate::value::scalar;
    use std::collections::HashMap;

    /// xorshift64: deterministic across runs and platforms.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn pick(rng: &mut Rng, vals: &[Word]) -> Word {
        vals[rng.below(vals.len() as u64) as usize]
    }

    /// Runs a deterministic random mutator: allocates records, refs,
    /// reals, strings, arrays and finite-region (stack) boxes across five
    /// regions, with mutations creating cross-region and backward
    /// pointers (including cycles). Appends the new root slots to
    /// `roots`.
    fn build_random_graph(
        rt: &mut Rt,
        rng: &mut Rng,
        vals: &mut Vec<Word>,
        roots: &mut Vec<usize>,
    ) {
        let depth = rt.region_depth();
        let regions: Vec<RegionId> = (0..5).map(|i| rt.letregion(i)).collect();
        let _ = depth;
        vals.push(scalar(1));
        vals.push(scalar(-7));
        let mut refs: Vec<Word> = Vec::new();
        let mut arrs: Vec<Word> = Vec::new();
        for i in 0..800u64 {
            let r = regions[rng.below(5) as usize];
            let v = match rng.below(100) {
                0..=39 => {
                    let n = 2 + rng.below(3) as u32;
                    let fields: Vec<Word> = (0..n).map(|_| pick(rng, vals)).collect();
                    if rng.below(2) == 0 {
                        rt.alloc_boxed(r, Tag::con(rng.below(4) as u32, n), &fields)
                    } else {
                        rt.alloc_record(r, &fields)
                    }
                }
                40..=54 => {
                    let x = pick(rng, vals);
                    let c = rt.alloc_boxed(r, Tag::reference(), &[x]);
                    refs.push(c);
                    c
                }
                55..=60 => rt.alloc_real(r, rng.below(1 << 20) as f64 * 0.5),
                61..=66 => rt.alloc_string(r, format!("s{}", rng.below(1000))),
                67..=74 => {
                    let init = pick(rng, vals);
                    let a = rt.alloc_array(r, 2 + rng.below(6) as usize, init);
                    arrs.push(a);
                    a
                }
                75..=82 => {
                    // Finite-region box, allocated directly on the stack
                    // the way the VM lays them out: tag word + fields.
                    let n = 1 + rng.below(3) as u32;
                    let slot = rt.stack.len();
                    rt.stack.push(Tag::record(n).encode());
                    for _ in 0..n {
                        let f = pick(rng, vals);
                        rt.stack.push(f);
                    }
                    ptr(STACK_BASE + slot as u64)
                }
                83..=91 if !refs.is_empty() => {
                    // Mutate a ref: later values flow into earlier cells,
                    // creating backward edges and cycles.
                    let c = refs[rng.below(refs.len() as u64) as usize];
                    let x = pick(rng, vals);
                    rt.set_field(c, 0, x);
                    c
                }
                _ if !arrs.is_empty() => {
                    let a = arrs[rng.below(arrs.len() as u64) as usize];
                    let n = rt.arr_len(a);
                    let x = pick(rng, vals);
                    let addr = rt.arr_elem_addr(a, rng.below(n as u64) as usize);
                    rt.write_addr(addr, x);
                    a
                }
                _ => pick(rng, vals),
            };
            vals.push(v);
            if i % 9 == 0 {
                rt.stack.push(v);
                roots.push(rt.stack.len() - 1);
            }
        }
    }

    /// Address-independent structural hash of everything reachable from
    /// `roots`: object identities are numbered in deterministic traversal
    /// order, so two heaps with the same shape hash equal regardless of
    /// where the collector placed the copies.
    struct Hasher {
        h: u64,
        ids: HashMap<u64, u64>,
        work: Vec<u64>,
    }

    impl Hasher {
        fn mix(&mut self, x: u64) {
            self.h ^= x;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }

        fn value(&mut self, v: Word) {
            if !is_ptr(v) {
                self.mix(1);
                self.mix(v);
                return;
            }
            let addr = ptr_addr(v);
            if space_of(addr) == Space::Data {
                // The data segment never moves and is identical across
                // runs of the same program.
                self.mix(3);
                self.mix(addr);
                return;
            }
            let id = match self.ids.get(&addr) {
                Some(&id) => id,
                None => {
                    let id = self.ids.len() as u64;
                    self.ids.insert(addr, id);
                    self.work.push(addr);
                    id
                }
            };
            self.mix(2);
            self.mix(id);
        }
    }

    fn structural_hash(rt: &Rt, root_slots: &[usize]) -> u64 {
        let mut hs = Hasher {
            h: 0xcbf2_9ce4_8422_2325,
            ids: HashMap::new(),
            work: Vec::new(),
        };
        for &slot in root_slots {
            hs.value(rt.stack[slot]);
        }
        let mut i = 0;
        while i < hs.work.len() {
            let addr = hs.work[i];
            i += 1;
            if space_of(addr) == Space::Large {
                match &rt.lobjs.get(Lobjs::id_of(addr)).data {
                    LData::Str(s) => {
                        hs.mix(4);
                        for b in s.bytes() {
                            hs.mix(u64::from(b));
                        }
                    }
                    LData::Arr(a) => {
                        hs.mix(5);
                        hs.mix(a.len() as u64);
                        for k in 0..a.len() {
                            let v = match &rt.lobjs.get(Lobjs::id_of(addr)).data {
                                LData::Arr(a) => a[k],
                                LData::Str(_) => unreachable!(),
                            };
                            hs.value(v);
                        }
                    }
                }
                continue;
            }
            let tag = Tag::decode(rt.read_addr(addr));
            hs.mix(6);
            hs.mix(tag.kind as u64);
            hs.mix(u64::from(tag.size));
            hs.mix(u64::from(tag.info));
            if tag.scannable() {
                for k in 0..u64::from(tag.size) {
                    hs.value(rt.read_addr(addr + 1 + k));
                }
            } else if tag.kind == Kind::Real {
                hs.mix(rt.read_addr(addr + 1));
            }
        }
        hs.h
    }

    /// Builds the seeded graph, collects three times (mutating between
    /// collections, restarting from the surviving roots), and returns the
    /// runtime plus its root slots.
    fn run_mutator(workers: usize, seed: u64) -> (Rt, Vec<usize>) {
        let mut rt = Rt::new(RtConfig {
            initial_pages: 32,
            gc_workers: workers,
            ..RtConfig::rgt()
        });
        let mut rng = Rng(seed);
        let mut vals = Vec::new();
        let mut roots = Vec::new();
        for _ in 0..3 {
            build_random_graph(&mut rt, &mut rng, &mut vals, &mut roots);
            // One value rides through the extra-roots (VM register) path.
            let mut extra = [rt.stack[roots[0]]];
            gc::collect(&mut rt, &roots, &mut extra);
            assert_eq!(
                extra[0], rt.stack[roots[0]],
                "register and stack copies of the same root must agree"
            );
            // Pointers held outside the root set are stale after a
            // collection; restart the value pool from the live roots.
            vals.clear();
            vals.extend(roots.iter().map(|&s| rt.stack[s]));
        }
        (rt, roots)
    }

    const SEED: u64 = 0x5EED_0300;

    #[test]
    fn parallel_collection_matches_serial() {
        let (base, base_roots) = run_mutator(1, SEED);
        let base_hash = structural_hash(&base, &base_roots);
        let base_used: Vec<u64> = base.regions.iter().map(|d| d.used_words).collect();
        assert!(base.stats.gc_count >= 3 && base.stats.gc_copied_words > 0);
        for workers in [2usize, 4] {
            let (rt, roots) = run_mutator(workers, SEED);
            assert_eq!(
                rt.stats.gc_copied_words, base.stats.gc_copied_words,
                "copied words diverged at {workers} workers"
            );
            let used: Vec<u64> = rt.regions.iter().map(|d| d.used_words).collect();
            assert_eq!(used, base_used, "live words per region diverged");
            assert_eq!(
                structural_hash(&rt, &roots),
                base_hash,
                "surviving structure diverged at {workers} workers"
            );
            rt.check_page_conservation().unwrap();
        }
    }

    #[test]
    fn parallel_collection_is_deterministic_run_to_run() {
        let (a, ra) = run_mutator(4, SEED);
        let (b, rb) = run_mutator(4, SEED);
        assert_eq!(a.stats.gc_records, b.stats.gc_records);
        assert_eq!(a.heap.total_pages(), b.heap.total_pages());
        assert_eq!(a.heap.free_pages(), b.heap.free_pages());
        let pages_a: Vec<usize> = a.regions.iter().map(|d| d.pages).collect();
        let pages_b: Vec<usize> = b.regions.iter().map(|d| d.pages).collect();
        assert_eq!(
            pages_a, pages_b,
            "page schedule must not depend on thread timing"
        );
        assert_eq!(structural_hash(&a, &ra), structural_hash(&b, &rb));
    }

    #[test]
    fn worker_partition_is_contiguous_balanced_and_deterministic() {
        let weights = [10, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let owner = partition(&weights, 3);
        // Ranges are contiguous in region-id order and every worker gets
        // one (id neighbourhoods stay together — see `partition`).
        assert!(owner.windows(2).all(|p| p[0] <= p[1] && p[1] - p[0] <= 1));
        assert_eq!(owner[0], 0);
        assert_eq!(*owner.last().unwrap(), 2);
        // Balanced by from-space weight plus the fresh to-space page.
        let mut load = [0usize; 3];
        for (r, &w) in owner.iter().enumerate() {
            load[w] += weights[r] + 1;
        }
        assert_eq!(load.iter().sum::<usize>(), 10 + 9 + 10);
        assert!(load.iter().all(|&l| l >= 6), "no worker starves: {load:?}");
        assert_eq!(owner, partition(&weights, 3));
    }

    #[test]
    fn finite_boxes_and_large_objects_parallel_matches_serial() {
        // The shared evacuation logic handles finite-region (stack)
        // boxes and large objects identically in every collector, but the
        // parallel epilogue has its own mark/sweep plumbing — so assert
        // directly: boxes stay put with their constant marks removed,
        // large objects are traversed in place and never copied, the
        // unreachable one is swept, and every counter matches the serial
        // collector bit for bit.
        let run = |workers: usize| {
            let mut rt = Rt::new(RtConfig {
                initial_pages: 16,
                gc_workers: workers,
                ..RtConfig::rgt()
            });
            let r = rt.letregion(0);
            let elem = rt.alloc_record(r, &[rt.tag_int(5)]);
            let arr = rt.alloc_array(r, 3, rt.tag_int(0));
            rt.write_addr(rt.arr_elem_addr(arr, 0), elem);
            let _dead = rt.alloc_array(r, 100, rt.tag_int(0));
            let inner = rt.alloc_record(r, &[rt.tag_int(7)]);
            let base = rt.stack.len();
            rt.stack.push(Tag::record(1).encode());
            rt.stack.push(inner);
            rt.stack.push(ptr(STACK_BASE + base as u64));
            rt.stack.push(arr);
            for _ in 0..200 {
                let _ = rt.alloc_record(r, &[rt.tag_int(0)]);
            }
            assert_eq!(rt.lobjs.live_count(), 2);
            gc::collect(&mut rt, &[base + 2, base + 3], &mut []);
            assert_eq!(
                rt.stack[base + 3],
                arr,
                "large object moved ({workers} workers)"
            );
            assert_eq!(
                rt.lobjs.live_count(),
                1,
                "dead array not swept ({workers} workers)"
            );
            assert!(
                !rt.lobjs.get(Lobjs::id_of(ptr_addr(arr))).marked,
                "surviving large object still marked ({workers} workers)"
            );
            assert!(
                !Tag::decode(rt.stack[base]).mark,
                "constant mark left on finite box ({workers} workers)"
            );
            let inner2 = rt.stack[base + 1];
            assert_ne!(inner2, inner, "box field not evacuated ({workers} workers)");
            assert_eq!(rt.untag_int(rt.field(inner2, 0)), 7);
            let elem2 = rt.read_addr(rt.arr_elem_addr(arr, 0));
            assert_eq!(rt.untag_int(rt.field(elem2, 0)), 5);
            rt.check_page_conservation().unwrap();
            (
                rt.stats.gc_copied_words,
                rt.stats.gc_count,
                rt.stats.gc_records.last().unwrap().lobjs_freed,
                rt.regions.iter().map(|d| d.used_words).collect::<Vec<_>>(),
            )
        };
        let serial = run(1);
        for workers in [2usize, 4] {
            assert_eq!(
                run(workers),
                serial,
                "counters diverged at {workers} workers"
            );
        }
    }
}
