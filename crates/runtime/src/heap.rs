//! The region heap: a growable arena of fixed-size region pages linked
//! through a free-list (paper §2.1, §2.4).
//!
//! Every page starts with a two-word *region page descriptor*: the address
//! of the next page in its region (or free-list) and an *origin pointer*
//! back to the region descriptor of the owning region. Pages are aligned
//! to their (power-of-two) size, so the descriptor of the page containing
//! any address is found with a single mask — this is how the collector
//! finds `regiondesc(p)` (paper §2.4).

use crate::value::{Word, NONE_ADDR};

/// Offset of the next-page link in a page descriptor.
pub const PAGE_NEXT: u64 = 0;
/// Offset of the origin pointer (owning region id) in a page descriptor.
pub const PAGE_ORIGIN: u64 = 1;
/// First payload word of a page.
pub const PAGE_HDR: u64 = 2;

/// The region heap.
#[derive(Debug)]
pub struct Heap {
    pub(crate) words: Vec<Word>,
    page_words: usize,
    pub(crate) free_head: u64,
    pub(crate) free_count: usize,
    pub(crate) total_pages: usize,
    /// `true` while the free-list is known to be in ascending address
    /// order (set by [`Heap::sort_free_list`], cleared by any operation
    /// that may disturb the order), so redundant re-sorts are skipped.
    sorted: bool,
    /// Number of [`Heap::sort_free_list`] calls skipped because the list
    /// was already sorted (observable for tests).
    pub sort_skips: u64,
}

impl Heap {
    /// Creates a heap with `initial_pages` pages of `page_words` words
    /// (a power of two), all free (and virgin until first allocated).
    pub fn new(page_words: usize, initial_pages: usize) -> Self {
        assert!(page_words.is_power_of_two() && page_words >= 8);
        let mut h = Heap {
            words: Vec::new(),
            page_words,
            free_head: NONE_ADDR,
            free_count: 0,
            total_pages: 0,
            sorted: false,
            sort_skips: 0,
        };
        h.grow(initial_pages.max(1));
        h
    }

    /// Words per page.
    pub fn page_words(&self) -> usize {
        self.page_words
    }

    /// Total pages in the heap (free or in use).
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages currently on the free-list.
    pub fn free_pages(&self) -> usize {
        self.free_count
    }

    /// Pages currently owned by regions (or the collector's from-space).
    pub fn used_pages(&self) -> usize {
        self.total_pages - self.free_count
    }

    /// Reads a heap word.
    #[inline]
    pub fn read(&self, addr: u64) -> Word {
        self.words[addr as usize]
    }

    /// Writes a heap word.
    #[inline]
    pub fn write(&mut self, addr: u64, v: Word) {
        self.words[addr as usize] = v;
    }

    /// The base address of the page containing `addr` (paper §2.4's
    /// bitwise-and trick).
    #[inline]
    pub fn page_base(&self, addr: u64) -> u64 {
        addr & !(self.page_words as u64 - 1)
    }

    /// One past the last usable word of the page containing `addr`.
    #[inline]
    pub fn page_end(&self, addr: u64) -> u64 {
        self.page_base(addr) + self.page_words as u64
    }

    /// Grows the heap by `n` pages in O(1): the new pages are *virgin* —
    /// counted free, but not linked into the free-list and not backed by
    /// arena storage until first popped. Growth is a policy decision (the
    /// collector granting itself garbage headroom), and eagerly zeroing
    /// the grant would charge megabytes of memset and page faults to the
    /// GC pause; lazily, headroom that is never allocated from never
    /// costs a byte, and first-touch cost lands on the mutator allocation
    /// that actually uses the page. Virgin pages sit above every
    /// materialized page, so a sorted free-list stays sorted.
    pub fn grow(&mut self, n: usize) {
        self.free_count += n;
        self.total_pages += n;
    }

    /// Pages granted by [`grow`](Heap::grow) but not yet backed by arena
    /// storage. Always the address range `words.len() ..` upward.
    pub fn virgin_pages(&self) -> usize {
        self.total_pages - self.words.len() / self.page_words
    }

    /// Pages currently backed by arena storage (virgin grants excluded) —
    /// the footprint measure the page-cap quota is charged against.
    pub fn materialized_pages(&self) -> usize {
        self.words.len() / self.page_words
    }

    /// Takes one page from the free-list (growing the heap if empty) and
    /// stamps its origin. Returns the page base address.
    pub fn alloc_page(&mut self, origin: u64) -> u64 {
        if self.free_count == 0 {
            let n = (self.total_pages / 4).max(32);
            self.grow(n);
        }
        let page = self.pop_free_page().expect("free_count is nonzero");
        self.write(page + PAGE_NEXT, NONE_ADDR);
        self.write(page + PAGE_ORIGIN, origin);
        page
    }

    /// Appends a whole chain of pages (`first ..` following next-links,
    /// ending at the page containing `last_addr`) to the free-list in
    /// constant time (paper §2.1). `count` pages are returned.
    pub fn free_run(&mut self, first: u64, last_addr: u64, count: usize) {
        if first == NONE_ADDR {
            return;
        }
        // The chain is prepended in whatever order the region built it.
        self.sorted = false;
        let last_page = self.page_base(last_addr);
        debug_assert_eq!(self.read(last_page + PAGE_NEXT), NONE_ADDR);
        self.write(last_page + PAGE_NEXT, self.free_head);
        self.free_head = first;
        self.free_count += count;
    }

    /// Rebuilds the free-list in ascending address order, so subsequent
    /// [`alloc_page`](Heap::alloc_page) calls fill the arena from the
    /// bottom. Run before a collection's flip when shrinking is enabled:
    /// to-space then lands at low addresses and the tail stays free for
    /// [`release_tail`](Heap::release_tail).
    pub fn sort_free_list(&mut self) {
        if self.sorted {
            // Popping from a sorted list keeps it sorted and releasing
            // tail pages preserves relative order, so the last sort is
            // still valid: re-linking would be a no-op.
            self.sort_skips += 1;
            return;
        }
        let mut pages: Vec<u64> = self.pages_from(self.free_head).collect();
        pages.sort_unstable();
        let mut head = NONE_ADDR;
        for &p in pages.iter().rev() {
            self.write(p + PAGE_NEXT, head);
            head = p;
        }
        self.free_head = head;
        self.sorted = true;
    }

    /// Releases up to `max` *free* pages from the tail of the arena back
    /// to the process allocator, returning how many were released. Only
    /// the physical tail can be returned (pages are indices into one
    /// contiguous arena), so the shrink stops at the first in-use tail
    /// page. Two passes over the free-list regardless of how many pages
    /// come off — a per-page rescan would be quadratic when the parallel
    /// collector's pool reserve inflates the arena by tens of thousands
    /// of pages and the policy releases them all at once.
    pub fn release_tail(&mut self, max: usize) -> usize {
        if max == 0 || self.total_pages <= 1 {
            return 0;
        }
        // Virgin pages are the extreme tail and were never backed by
        // storage: un-granting them is pure bookkeeping.
        let virgin = self.virgin_pages().min(max).min(self.total_pages - 1);
        self.total_pages -= virgin;
        self.free_count -= virgin;
        let max = max - virgin;
        if max == 0 || self.total_pages <= 1 {
            return virgin;
        }
        // Pass 1: which pages are free?
        let mut free = vec![false; self.total_pages];
        let mut cur = self.free_head;
        while cur != NONE_ADDR {
            free[(cur as usize) / self.page_words] = true;
            cur = self.read(cur + PAGE_NEXT);
        }
        // The releasable run is the contiguous free tail.
        let mut released = 0;
        while released < max
            && self.total_pages - released > 1
            && free[self.total_pages - released - 1]
        {
            released += 1;
        }
        if released == 0 {
            return virgin;
        }
        // Pass 2: unlink the run. It is exactly the set of free pages at
        // or above the cut, so one filtering walk suffices; removal
        // preserves the relative order of the survivors, so a sorted
        // list stays sorted.
        let cut = ((self.total_pages - released) * self.page_words) as u64;
        let mut prev = NONE_ADDR;
        let mut cur = self.free_head;
        while cur != NONE_ADDR {
            let next = self.read(cur + PAGE_NEXT);
            if cur >= cut {
                if prev == NONE_ADDR {
                    self.free_head = next;
                } else {
                    self.write(prev + PAGE_NEXT, next);
                }
            } else {
                prev = cur;
            }
            cur = next;
        }
        self.free_count -= released;
        self.total_pages -= released;
        self.words.truncate(self.total_pages * self.page_words);
        // Capacity is deliberately kept: the parallel collector's headroom
        // policy grows and shrinks the heap every collection, so freeing
        // the backing store here would turn each collection into an
        // munmap / refault / realloc-copy cycle. The arena keeps its
        // high-water backing and rematerializes pages for free.
        released + virgin
    }

    /// Iterates the page chain starting at `first`.
    pub fn pages_from(&self, first: u64) -> PageIter<'_> {
        PageIter {
            heap: self,
            cur: first,
        }
    }

    /// Heap size in bytes (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Pops one page off the free-list without stamping it, or `None` if
    /// no free page exists. The linked list is drained first; virgin
    /// pages then materialize bottom-up, one page's worth of storage at a
    /// time (`Vec` doubling amortizes the reallocations). Both orders
    /// ascend, so `sorted` stays valid. The parallel collector uses this
    /// to carve per-worker page pools before spawning.
    pub(crate) fn pop_free_page(&mut self) -> Option<u64> {
        if self.free_head != NONE_ADDR {
            let page = self.free_head;
            self.free_head = self.read(page + PAGE_NEXT);
            self.free_count -= 1;
            return Some(page);
        }
        if self.virgin_pages() > 0 {
            // Reserve backing for the whole span in one step, so at most
            // one reallocation (arena memcpy) happens per policy grow —
            // and it happens here, on the first allocation that needs the
            // new pages (almost always a mutator allocation), not inside
            // a collection pause.
            let span = self.total_pages * self.page_words;
            if span > self.words.capacity() {
                let len = self.words.len();
                self.words.reserve(span - len);
            }
            let base = self.words.len() as u64;
            self.words.resize(self.words.len() + self.page_words, 0);
            self.free_count -= 1;
            return Some(base);
        }
        None
    }

    /// Pushes one page back onto the free-list head (the inverse of
    /// [`Heap::pop_free_page`], for unused pool pages).
    pub(crate) fn push_free_page(&mut self, page: u64) {
        self.sorted = false;
        self.write(page + PAGE_NEXT, self.free_head);
        self.free_head = page;
        self.free_count += 1;
    }
}

/// Iterator over a chain of pages.
#[derive(Debug)]
pub struct PageIter<'a> {
    heap: &'a Heap,
    cur: u64,
}

impl Iterator for PageIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cur == NONE_ADDR {
            return None;
        }
        let p = self.cur;
        self.cur = self.heap.read(p + PAGE_NEXT);
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_aligned() {
        let h = Heap::new(256, 4);
        assert_eq!(h.page_base(300), 256);
        assert_eq!(h.page_base(255), 0);
        assert_eq!(h.page_end(300), 512);
    }

    #[test]
    fn alloc_and_free_conserve_pages() {
        let mut h = Heap::new(64, 8);
        assert_eq!(h.free_pages(), 8);
        let p1 = h.alloc_page(7);
        let p2 = h.alloc_page(7);
        assert_eq!(h.free_pages(), 6);
        assert_eq!(h.read(p1 + PAGE_ORIGIN), 7);
        // Chain p1 -> p2 and free the run.
        h.write(p1 + PAGE_NEXT, p2);
        h.write(p2 + PAGE_NEXT, NONE_ADDR);
        h.free_run(p1, p2 + 5, 2);
        assert_eq!(h.free_pages(), 8);
        assert_eq!(h.total_pages(), 8);
    }

    #[test]
    fn grows_when_free_list_empty() {
        let mut h = Heap::new(64, 1);
        let _ = h.alloc_page(0);
        let before = h.total_pages();
        let _ = h.alloc_page(0);
        assert!(h.total_pages() > before);
    }

    #[test]
    fn page_chain_iteration() {
        let mut h = Heap::new(64, 4);
        let a = h.alloc_page(0);
        let b = h.alloc_page(0);
        let c = h.alloc_page(0);
        h.write(a + PAGE_NEXT, b);
        h.write(b + PAGE_NEXT, c);
        let chain: Vec<u64> = h.pages_from(a).collect();
        assert_eq!(chain, vec![a, b, c]);
    }

    #[test]
    fn release_tail_returns_free_tail_pages_only() {
        let mut h = Heap::new(64, 8);
        // Occupy the two lowest pages; the free-list holds the rest.
        // (Pages come off the LIFO free-list highest-first, so drain and
        // re-free everything but the lowest two.)
        let mut pages: Vec<u64> = (0..8).map(|_| h.alloc_page(0)).collect();
        pages.sort();
        for &p in &pages[2..] {
            h.write(p + PAGE_NEXT, NONE_ADDR);
            h.free_run(p, p, 1);
        }
        assert_eq!(h.free_pages(), 6);
        // All six free pages sit above the two in-use ones: releasable.
        assert_eq!(h.release_tail(100), 6);
        assert_eq!(h.total_pages(), 2);
        assert_eq!(h.free_pages(), 0);
        // The tail is now in use; nothing further can be released.
        assert_eq!(h.release_tail(100), 0);
        assert_eq!(h.bytes(), 2 * 64 * 8);
    }

    #[test]
    fn redundant_free_list_sorts_are_skipped() {
        let mut h = Heap::new(64, 8);
        assert_eq!(h.sort_skips, 0);
        h.sort_free_list(); // grow() left the list unsorted: real sort
        assert_eq!(h.sort_skips, 0);
        h.sort_free_list(); // nothing disturbed the order since
        assert_eq!(h.sort_skips, 1);
        // Popping pages keeps a sorted list sorted.
        let a = h.alloc_page(0);
        h.sort_free_list();
        assert_eq!(h.sort_skips, 2);
        // Freeing a run disturbs the order; the next sort is real again.
        h.write(a + PAGE_NEXT, NONE_ADDR);
        h.free_run(a, a, 1);
        h.sort_free_list();
        assert_eq!(h.sort_skips, 2);
        h.sort_free_list();
        assert_eq!(h.sort_skips, 3);
        // The skipped sort left the list genuinely ascending.
        let pages: Vec<u64> = h.pages_from(h.free_head).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        assert_eq!(pages, sorted);
    }

    #[test]
    fn pop_and_push_free_pages_round_trip() {
        let mut h = Heap::new(64, 4);
        let before = h.free_pages();
        let a = h.pop_free_page().unwrap();
        let b = h.pop_free_page().unwrap();
        assert_eq!(h.free_pages(), before - 2);
        h.push_free_page(b);
        h.push_free_page(a);
        assert_eq!(h.free_pages(), before);
        assert_eq!(h.pop_free_page(), Some(a), "LIFO restore");
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut h = Heap::new(64, 2);
        let a = h.alloc_page(0);
        h.write(a + PAGE_NEXT, NONE_ADDR);
        h.free_run(a, a, 1);
        let b = h.alloc_page(1);
        assert_eq!(a, b, "free-list is LIFO");
    }
}
