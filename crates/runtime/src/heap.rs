//! The region heap: a growable arena of fixed-size region pages linked
//! through a free-list (paper §2.1, §2.4).
//!
//! Every page starts with a two-word *region page descriptor*: the address
//! of the next page in its region (or free-list) and an *origin pointer*
//! back to the region descriptor of the owning region. Pages are aligned
//! to their (power-of-two) size, so the descriptor of the page containing
//! any address is found with a single mask — this is how the collector
//! finds `regiondesc(p)` (paper §2.4).

use crate::value::{Word, NONE_ADDR};

/// Offset of the next-page link in a page descriptor.
pub const PAGE_NEXT: u64 = 0;
/// Offset of the origin pointer (owning region id) in a page descriptor.
pub const PAGE_ORIGIN: u64 = 1;
/// First payload word of a page.
pub const PAGE_HDR: u64 = 2;

/// The region heap.
#[derive(Debug)]
pub struct Heap {
    words: Vec<Word>,
    page_words: usize,
    free_head: u64,
    free_count: usize,
    total_pages: usize,
}

impl Heap {
    /// Creates a heap with `initial_pages` pages of `page_words` words
    /// (a power of two), all on the free-list.
    pub fn new(page_words: usize, initial_pages: usize) -> Self {
        assert!(page_words.is_power_of_two() && page_words >= 8);
        let mut h = Heap {
            words: Vec::new(),
            page_words,
            free_head: NONE_ADDR,
            free_count: 0,
            total_pages: 0,
        };
        h.grow(initial_pages.max(1));
        h
    }

    /// Words per page.
    pub fn page_words(&self) -> usize {
        self.page_words
    }

    /// Total pages in the heap (free or in use).
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages currently on the free-list.
    pub fn free_pages(&self) -> usize {
        self.free_count
    }

    /// Pages currently owned by regions (or the collector's from-space).
    pub fn used_pages(&self) -> usize {
        self.total_pages - self.free_count
    }

    /// Reads a heap word.
    #[inline]
    pub fn read(&self, addr: u64) -> Word {
        self.words[addr as usize]
    }

    /// Writes a heap word.
    #[inline]
    pub fn write(&mut self, addr: u64, v: Word) {
        self.words[addr as usize] = v;
    }

    /// The base address of the page containing `addr` (paper §2.4's
    /// bitwise-and trick).
    #[inline]
    pub fn page_base(&self, addr: u64) -> u64 {
        addr & !(self.page_words as u64 - 1)
    }

    /// One past the last usable word of the page containing `addr`.
    #[inline]
    pub fn page_end(&self, addr: u64) -> u64 {
        self.page_base(addr) + self.page_words as u64
    }

    /// Grows the arena by `n` fresh pages, appending them to the free-list.
    pub fn grow(&mut self, n: usize) {
        for _ in 0..n {
            let base = self.words.len() as u64;
            self.words.extend(std::iter::repeat_n(0, self.page_words));
            self.write(base + PAGE_NEXT, self.free_head);
            self.write(base + PAGE_ORIGIN, NONE_ADDR);
            self.free_head = base;
            self.free_count += 1;
            self.total_pages += 1;
        }
    }

    /// Takes one page from the free-list (growing the heap if empty) and
    /// stamps its origin. Returns the page base address.
    pub fn alloc_page(&mut self, origin: u64) -> u64 {
        if self.free_head == NONE_ADDR {
            let n = (self.total_pages / 4).max(32);
            self.grow(n);
        }
        let page = self.free_head;
        self.free_head = self.read(page + PAGE_NEXT);
        self.free_count -= 1;
        self.write(page + PAGE_NEXT, NONE_ADDR);
        self.write(page + PAGE_ORIGIN, origin);
        page
    }

    /// Appends a whole chain of pages (`first ..` following next-links,
    /// ending at the page containing `last_addr`) to the free-list in
    /// constant time (paper §2.1). `count` pages are returned.
    pub fn free_run(&mut self, first: u64, last_addr: u64, count: usize) {
        if first == NONE_ADDR {
            return;
        }
        let last_page = self.page_base(last_addr);
        debug_assert_eq!(self.read(last_page + PAGE_NEXT), NONE_ADDR);
        self.write(last_page + PAGE_NEXT, self.free_head);
        self.free_head = first;
        self.free_count += count;
    }

    /// Rebuilds the free-list in ascending address order, so subsequent
    /// [`alloc_page`](Heap::alloc_page) calls fill the arena from the
    /// bottom. Run before a collection's flip when shrinking is enabled:
    /// to-space then lands at low addresses and the tail stays free for
    /// [`release_tail`](Heap::release_tail).
    pub fn sort_free_list(&mut self) {
        let mut pages: Vec<u64> = self.pages_from(self.free_head).collect();
        pages.sort_unstable();
        let mut head = NONE_ADDR;
        for &p in pages.iter().rev() {
            self.write(p + PAGE_NEXT, head);
            head = p;
        }
        self.free_head = head;
    }

    /// Releases up to `max` *free* pages from the tail of the arena back
    /// to the process allocator, returning how many were released. Only
    /// the physical tail can be returned (pages are indices into one
    /// contiguous arena), so the shrink stops at the first in-use tail
    /// page; the free-list unlink is a scan, which is fine at GC
    /// frequency.
    pub fn release_tail(&mut self, max: usize) -> usize {
        let mut released = 0;
        'tail: while released < max && self.total_pages > 1 {
            let tail = (self.words.len() - self.page_words) as u64;
            let mut prev = NONE_ADDR;
            let mut cur = self.free_head;
            while cur != NONE_ADDR {
                let next = self.read(cur + PAGE_NEXT);
                if cur == tail {
                    if prev == NONE_ADDR {
                        self.free_head = next;
                    } else {
                        self.write(prev + PAGE_NEXT, next);
                    }
                    self.words.truncate(self.words.len() - self.page_words);
                    self.free_count -= 1;
                    self.total_pages -= 1;
                    released += 1;
                    continue 'tail;
                }
                prev = cur;
                cur = next;
            }
            break; // tail page is in use
        }
        if released > 0 {
            self.words.shrink_to_fit();
        }
        released
    }

    /// Iterates the page chain starting at `first`.
    pub fn pages_from(&self, first: u64) -> PageIter<'_> {
        PageIter {
            heap: self,
            cur: first,
        }
    }

    /// Heap size in bytes (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator over a chain of pages.
#[derive(Debug)]
pub struct PageIter<'a> {
    heap: &'a Heap,
    cur: u64,
}

impl Iterator for PageIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cur == NONE_ADDR {
            return None;
        }
        let p = self.cur;
        self.cur = self.heap.read(p + PAGE_NEXT);
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_aligned() {
        let h = Heap::new(256, 4);
        assert_eq!(h.page_base(300), 256);
        assert_eq!(h.page_base(255), 0);
        assert_eq!(h.page_end(300), 512);
    }

    #[test]
    fn alloc_and_free_conserve_pages() {
        let mut h = Heap::new(64, 8);
        assert_eq!(h.free_pages(), 8);
        let p1 = h.alloc_page(7);
        let p2 = h.alloc_page(7);
        assert_eq!(h.free_pages(), 6);
        assert_eq!(h.read(p1 + PAGE_ORIGIN), 7);
        // Chain p1 -> p2 and free the run.
        h.write(p1 + PAGE_NEXT, p2);
        h.write(p2 + PAGE_NEXT, NONE_ADDR);
        h.free_run(p1, p2 + 5, 2);
        assert_eq!(h.free_pages(), 8);
        assert_eq!(h.total_pages(), 8);
    }

    #[test]
    fn grows_when_free_list_empty() {
        let mut h = Heap::new(64, 1);
        let _ = h.alloc_page(0);
        let before = h.total_pages();
        let _ = h.alloc_page(0);
        assert!(h.total_pages() > before);
    }

    #[test]
    fn page_chain_iteration() {
        let mut h = Heap::new(64, 4);
        let a = h.alloc_page(0);
        let b = h.alloc_page(0);
        let c = h.alloc_page(0);
        h.write(a + PAGE_NEXT, b);
        h.write(b + PAGE_NEXT, c);
        let chain: Vec<u64> = h.pages_from(a).collect();
        assert_eq!(chain, vec![a, b, c]);
    }

    #[test]
    fn release_tail_returns_free_tail_pages_only() {
        let mut h = Heap::new(64, 8);
        // Occupy the two lowest pages; the free-list holds the rest.
        // (Pages come off the LIFO free-list highest-first, so drain and
        // re-free everything but the lowest two.)
        let mut pages: Vec<u64> = (0..8).map(|_| h.alloc_page(0)).collect();
        pages.sort();
        for &p in &pages[2..] {
            h.write(p + PAGE_NEXT, NONE_ADDR);
            h.free_run(p, p, 1);
        }
        assert_eq!(h.free_pages(), 6);
        // All six free pages sit above the two in-use ones: releasable.
        assert_eq!(h.release_tail(100), 6);
        assert_eq!(h.total_pages(), 2);
        assert_eq!(h.free_pages(), 0);
        // The tail is now in use; nothing further can be released.
        assert_eq!(h.release_tail(100), 0);
        assert_eq!(h.bytes(), 2 * 64 * 8);
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut h = Heap::new(64, 2);
        let a = h.alloc_page(0);
        h.write(a + PAGE_NEXT, NONE_ADDR);
        h.free_run(a, a, 1);
        let b = h.alloc_page(1);
        assert_eq!(a, b, "free-list is LIFO");
    }
}
