//! Runtime statistics: allocation volume, collection accounting (paper
//! §4.3) and peak memory.

/// Accounting for one garbage collection, following §4.3 of the paper.
///
/// With `L_i` the live pages after collection `i`, `A_p` the pages
/// requested between collections `i` and `i+1`, and `A_{i+1}` the
/// from-space pages just before collection `i+1`:
///
/// * memory reclaimed by region inference: `L_i + A_p − A_{i+1}`
/// * memory reclaimed by the collector: `A_{i+1} − L_{i+1}`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcRecord {
    /// Live pages after the previous collection (`L_i`).
    pub prev_live_pages: usize,
    /// Pages requested from the free-list since the previous collection
    /// (`A_p`).
    pub pages_requested: u64,
    /// Pages in the global from-space just before this collection
    /// (`A_{i+1}`).
    pub from_pages: usize,
    /// Live (to-space) pages after this collection (`L_{i+1}`).
    pub live_pages: usize,
    /// Unused words inside from-space pages at collection time (waste).
    pub waste_words: u64,
    /// Total payload words of the from-space pages.
    pub from_space_words: u64,
    /// Words copied by the collector.
    pub copied_words: u64,
    /// Large objects freed by this collection.
    pub lobjs_freed: usize,
}

impl GcRecord {
    /// Fraction of reclaimed memory recycled by region inference (`RI` in
    /// Table 3). `None` when nothing was reclaimed.
    pub fn ri_fraction(&self) -> Option<f64> {
        let total =
            self.prev_live_pages as f64 + self.pages_requested as f64 - self.live_pages as f64;
        if total <= 0.0 {
            return None;
        }
        let ri = self.prev_live_pages as f64 + self.pages_requested as f64 - self.from_pages as f64;
        Some((ri / total).clamp(0.0, 1.0))
    }

    /// Fraction reclaimed by the garbage collector (`GC` in Table 3).
    pub fn gc_fraction(&self) -> Option<f64> {
        self.ri_fraction().map(|ri| 1.0 - ri)
    }

    /// Waste: unused page space as a fraction of allocated page space.
    pub fn waste_fraction(&self) -> f64 {
        if self.from_space_words == 0 {
            0.0
        } else {
            self.waste_words as f64 / self.from_space_words as f64
        }
    }
}

/// A small log2 histogram of GC pause times.
///
/// Bucket `i` counts pauses with `2^(i-1) < ns <= 2^i - 1` (bucket 0
/// counts zero-length pauses), i.e. a pause lands in the bucket of its
/// bit length. Quantiles are answered with the bucket's upper bound, so
/// they are exact to within a factor of two — plenty for the pause
/// *distribution* the VM-service roadmap item asks for.
#[derive(Debug, Clone, PartialEq)]
pub struct PauseHist {
    /// Pause counts by bit length of the nanosecond duration.
    pub buckets: [u64; 64],
}

impl Default for PauseHist {
    fn default() -> Self {
        PauseHist { buckets: [0; 64] }
    }
}

impl PauseHist {
    /// Records one pause of `ns` nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let b = (u64::BITS - ns.leading_zeros()) as usize;
        self.buckets[b.min(63)] += 1;
    }

    /// Total number of recorded pauses.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (ns) of the bucket holding the `q`-quantile pause
    /// (`0.0 < q <= 1.0`), or `None` if nothing was recorded.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if b == 0 { 0 } else { (1u64 << b) - 1 });
            }
        }
        None
    }
}

/// Cumulative runtime statistics.
#[derive(Debug, Clone, Default)]
pub struct RtStats {
    /// Words allocated in regions by the program (excluding GC copies).
    pub words_allocated: u64,
    /// Number of region allocations.
    pub allocations: u64,
    /// Words allocated as large objects.
    pub lobj_words_allocated: u64,
    /// Regions pushed (infinite regions only).
    pub regions_created: u64,
    /// Regions popped.
    pub regions_popped: u64,
    /// Region pages requested from the free-list since the last collection.
    pub pages_requested_since_gc: u64,
    /// Number of collections performed (`#GC` in Table 2).
    pub gc_count: u64,
    /// Minor (nursery) collections of the generational baseline.
    pub minor_gcs: u64,
    /// Major collections of the generational baseline.
    pub major_gcs: u64,
    /// Total words copied by the collector.
    pub gc_copied_words: u64,
    /// Wall-clock nanoseconds spent collecting.
    pub gc_time_ns: u64,
    /// Longest single GC pause (one full collection, or one slice in
    /// sliced mode), nanoseconds.
    pub gc_pause_max_ns: u64,
    /// Distribution of GC pause times.
    pub gc_pause_hist: PauseHist,
    /// Slices run by the sliced (incremental) collector, across all
    /// collections.
    pub gc_slices: u64,
    /// Largest drain work (words scanned) of any single slice — bounded
    /// by `gc_slice_budget_words` plus one object.
    pub gc_max_slice_scan_words: u64,
    /// Peak memory (heap arena + stack + large objects + data), bytes.
    pub peak_bytes: usize,
    /// Live pages after the most recent collection.
    pub last_live_pages: usize,
    /// Post-collection arena growths (heap-to-live ratio maintenance).
    pub heap_grows: u64,
    /// Post-collection arena shrinks that actually released pages.
    pub heap_shrinks: u64,
    /// Total pages released back to the OS-side arena by shrinking.
    pub pages_released: u64,
    /// Per-collection accounting records.
    pub gc_records: Vec<GcRecord>,
}

impl RtStats {
    /// Records a memory-footprint observation, keeping the peak.
    #[inline]
    pub fn observe_bytes(&mut self, bytes: usize) {
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
    }

    /// Records one GC pause: total time, max pause and the histogram.
    #[inline]
    pub fn record_pause(&mut self, ns: u64) {
        self.gc_time_ns += ns;
        if ns > self.gc_pause_max_ns {
            self.gc_pause_max_ns = ns;
        }
        self.gc_pause_hist.record(ns);
    }

    /// Aggregate RI fraction over all collections (Table 3, `RI`).
    pub fn ri_fraction(&self) -> Option<f64> {
        let mut ri = 0.0;
        let mut total = 0.0;
        for r in &self.gc_records {
            let t = r.prev_live_pages as f64 + r.pages_requested as f64 - r.live_pages as f64;
            if t > 0.0 {
                let x = r.prev_live_pages as f64 + r.pages_requested as f64 - r.from_pages as f64;
                ri += x.max(0.0);
                total += t;
            }
        }
        if total > 0.0 {
            Some((ri / total).clamp(0.0, 1.0))
        } else {
            None
        }
    }

    /// Aggregate waste fraction over all collections (Table 3, `W`).
    pub fn waste_fraction(&self) -> Option<f64> {
        let (mut w, mut t) = (0.0, 0.0);
        for r in &self.gc_records {
            w += r.waste_words as f64;
            t += r.from_space_words as f64;
        }
        if t > 0.0 {
            Some(w / t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ri_fraction_matches_paper_formula() {
        // L_i = 10, A_p = 30, A_{i+1} = 20, L_{i+1} = 5:
        // RI = (10 + 30 - 20) / (10 + 30 - 5) = 20/35
        let r = GcRecord {
            prev_live_pages: 10,
            pages_requested: 30,
            from_pages: 20,
            live_pages: 5,
            waste_words: 0,
            from_space_words: 0,
            copied_words: 0,
            lobjs_freed: 0,
        };
        let ri = r.ri_fraction().unwrap();
        assert!((ri - 20.0 / 35.0).abs() < 1e-12);
        let gc = r.gc_fraction().unwrap();
        assert!((gc - 15.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn peak_tracking() {
        let mut s = RtStats::default();
        s.observe_bytes(100);
        s.observe_bytes(50);
        assert_eq!(s.peak_bytes, 100);
    }

    #[test]
    fn pause_histogram_buckets_and_quantiles() {
        let mut h = PauseHist::default();
        assert_eq!(h.quantile_ns(0.5), None);
        // 99 short pauses, one long outlier.
        for _ in 0..99 {
            h.record(1000); // bucket 10 (<= 1023)
        }
        h.record(1_000_000); // bucket 20 (<= 1048575)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.5), Some(1023));
        assert_eq!(h.quantile_ns(0.99), Some(1023));
        assert_eq!(h.quantile_ns(1.0), Some((1 << 20) - 1));
    }

    #[test]
    fn record_pause_tracks_total_and_max() {
        let mut s = RtStats::default();
        s.record_pause(10);
        s.record_pause(500);
        s.record_pause(20);
        assert_eq!(s.gc_time_ns, 530);
        assert_eq!(s.gc_pause_max_ns, 500);
        assert_eq!(s.gc_pause_hist.count(), 3);
    }
}
