//! The runtime: region primitives (paper §3) and value constructors.
//!
//! `Rt` owns the region heap, the runtime stack, the data segment, the
//! large-object table and the region stack, and exposes the *region
//! primitives* the compiled code is linked against: allocating and
//! deallocating regions, allocating into regions, and reading/writing
//! boxed values in a tagging-aware way.

use crate::config::RtConfig;
use crate::heap::{Heap, PAGE_HDR, PAGE_NEXT};
use crate::lobj::{LData, Lobjs};
use crate::profile::Profiler;
use crate::region::RegionDesc;
pub use crate::region::RegionId;
use crate::stats::RtStats;
use crate::value::{
    self, ptr, ptr_addr, scalar, scalar_val, space_of, Space, Tag, Word, DATA_BASE, LOBJ_STRIDE,
    NONE_ADDR, STACK_BASE,
};
use std::collections::HashMap;

/// The runtime state for one program execution.
#[derive(Debug)]
pub struct Rt {
    /// Configuration (mode and collector policy).
    pub config: RtConfig,
    /// The region heap.
    pub heap: Heap,
    /// The runtime stack (activation records and finite regions).
    pub stack: Vec<Word>,
    /// The region stack of descriptors; `RegionId` indexes into it.
    pub regions: Vec<RegionDesc>,
    /// Large objects.
    pub lobjs: Lobjs,
    /// Statistics.
    pub stats: RtStats,
    /// Set when the free-list dropped below the threshold; the mutator
    /// collects at the next safe point (function entry, paper §4).
    pub gc_needed: bool,
    /// True while the collector runs (suppresses accounting of to-space
    /// page requests as mutator allocation).
    pub in_gc: bool,
    /// Region profiler (paper Fig. 5).
    pub profiler: Profiler,
    /// State of an in-progress sliced (incremental) collection, if any
    /// (see [`crate::gc_sliced`]).
    pub(crate) sliced: Option<Box<crate::gc_sliced::SlicedGc>>,
    data_strings: Vec<String>,
    data_interned: HashMap<String, u32>,
    // Inline bump-allocation cache: the `(a, e)` cursor of the region the
    // mutator allocated into last, kept out of its descriptor so the hot
    // path is a single compare-and-bump. While the cache is valid
    // (`cache_region != u32::MAX`), that descriptor's `a`/`used_words` are
    // stale; [`Rt::flush_alloc_cache`] writes them back. The cache is
    // never installed during a collection, so the collector always sees
    // accurate descriptors (it must flush on entry).
    cache_region: u32,
    cache_a: u64,
    cache_e: u64,
}

impl Rt {
    /// Creates a runtime in the given mode.
    pub fn new(config: RtConfig) -> Self {
        let heap = Heap::new(config.page_words(), config.initial_pages);
        Rt {
            heap,
            stack: Vec::with_capacity(1024),
            regions: Vec::new(),
            lobjs: Lobjs::new(),
            stats: RtStats::default(),
            gc_needed: false,
            in_gc: false,
            profiler: Profiler::new(config.profile),
            sliced: None,
            data_strings: Vec::new(),
            data_interned: HashMap::new(),
            cache_region: u32::MAX,
            cache_a: 0,
            cache_e: 0,
            config,
        }
    }

    // -------------------------------------------------------------- regions

    /// Pushes a fresh infinite region (with one page, as in the ML Kit)
    /// and returns its id. `name` identifies the region variable for
    /// profiling.
    pub fn letregion(&mut self, name: u32) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        let mut d = RegionDesc::empty(name);
        let page = self.alloc_page_for(id.0);
        d.fp = page;
        d.a = page + PAGE_HDR;
        d.e = page + self.heap.page_words() as u64;
        d.pages = 1;
        self.regions.push(d);
        self.stats.regions_created += 1;
        self.observe_mem();
        id
    }

    /// Pops the newest region, returning its pages to the free-list in
    /// constant time and freeing its large objects (paper §2.1, §3.1).
    pub fn endregion(&mut self) {
        // Region ids are stack indices and get reused: a stale cursor for
        // the popped index must not leak into its successor.
        if self.cache_region != u32::MAX && self.cache_region as usize + 1 == self.regions.len() {
            self.flush_alloc_cache();
        }
        let d = self.regions.pop().expect("region stack underflow");
        if d.fp != NONE_ADDR {
            if self.config.poison {
                let pw = self.heap.page_words() as u64;
                let mut p = d.fp;
                let pat = 0xDEAD_0000_0000_0001u64 | ((d.name as u64) << 16);
                while p != NONE_ADDR {
                    for i in crate::heap::PAGE_HDR..pw {
                        self.heap.write(p + i, pat);
                    }
                    p = self.heap.read(p + crate::heap::PAGE_NEXT);
                }
            }
            self.heap.free_run(d.fp, d.e - 1, d.pages);
        }
        self.free_lobj_list(d.lobjs);
        self.stats.regions_popped += 1;
        if let Some(sl) = self.sliced.as_mut() {
            sl.on_region_pop(self.regions.len());
        }
    }

    /// Pops regions until `depth` remain (used for scope exit and
    /// exception unwinding).
    pub fn pop_regions_to(&mut self, depth: usize) {
        while self.regions.len() > depth {
            self.endregion();
        }
    }

    /// Current region-stack depth.
    pub fn region_depth(&self) -> usize {
        self.regions.len()
    }

    fn free_lobj_list(&mut self, mut head: u32) {
        while head != 0 {
            let id = head - 1;
            head = self.lobjs.get(id).next;
            self.lobjs.free(id);
        }
    }

    /// Requests a page from the free-list, stamping `origin`, and updates
    /// the collection trigger.
    fn alloc_page_for(&mut self, origin: u32) -> u64 {
        let page = self.heap.alloc_page(origin as u64);
        if !self.in_gc {
            self.stats.pages_requested_since_gc += 1;
            if self.config.gc_enabled {
                let threshold =
                    (self.heap.total_pages() as f64 * self.config.gc_threshold) as usize;
                if self.heap.free_pages() < threshold {
                    self.gc_needed = true;
                }
            }
        }
        page
    }

    /// Bump-allocates `nwords` payload words in region `r`, extending the
    /// region with a fresh page if needed. Returns the word address.
    ///
    /// The fast path is a compare-and-bump on the cached cursor; the slow
    /// path runs on region change and page boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `nwords` exceeds the page payload size — such values must
    /// go to the large-object space.
    #[inline]
    pub fn alloc_words(&mut self, r: RegionId, nwords: u64) -> u64 {
        debug_assert!(nwords > 0);
        if r.0 == self.cache_region && self.cache_a + nwords <= self.cache_e {
            let addr = self.cache_a;
            self.cache_a += nwords;
            // The cache is never valid inside a collection, so this is
            // mutator allocation by construction.
            self.stats.words_allocated += nwords;
            self.stats.allocations += 1;
            return addr;
        }
        self.alloc_words_slow(r, nwords)
    }

    fn alloc_words_slow(&mut self, r: RegionId, nwords: u64) -> u64 {
        self.flush_alloc_cache();
        assert!(
            nwords as usize <= self.config.page_data_words(),
            "value of {nwords} words exceeds the region page size"
        );
        let d = &self.regions[r.0 as usize];
        if d.fp == NONE_ADDR || d.a + nwords > d.e {
            self.extend_region(r);
        }
        let d = &mut self.regions[r.0 as usize];
        let addr = d.a;
        d.a += nwords;
        d.used_words += nwords;
        let (a, e) = (d.a, d.e);
        if !self.in_gc {
            self.stats.words_allocated += nwords;
            self.stats.allocations += 1;
            self.cache_region = r.0;
            self.cache_a = a;
            self.cache_e = e;
        }
        addr
    }

    /// Writes the cached bump cursor back into its region descriptor and
    /// invalidates the cache. Must be called before anything reads a
    /// descriptor's `a`/`used_words` directly — in particular on collector
    /// entry and before popping the cached region.
    pub fn flush_alloc_cache(&mut self) {
        if self.cache_region != u32::MAX {
            let d = &mut self.regions[self.cache_region as usize];
            d.used_words += self.cache_a - d.a;
            d.a = self.cache_a;
            self.cache_region = u32::MAX;
        }
    }

    /// Extends region `r` with a fresh page, writing the slack sentinel so
    /// the collector's scan pointer can skip the unused page tail.
    fn extend_region(&mut self, r: RegionId) {
        let (a, e, fp) = {
            let d = &self.regions[r.0 as usize];
            (d.a, d.e, d.fp)
        };
        if self.config.tagged && fp != NONE_ADDR && a < e {
            let w = Tag::sentinel_word();
            self.heap.write(a, w);
        }
        let page = self.alloc_page_for(r.0);
        let pw = self.heap.page_words() as u64;
        let d = &mut self.regions[r.0 as usize];
        if d.fp == NONE_ADDR {
            d.fp = page;
        } else {
            // d.e is one past the end of the last page, so this is its base.
            let last = d.e - pw;
            self.heap.write(last + PAGE_NEXT, page);
        }
        let d = &mut self.regions[r.0 as usize];
        d.a = page + PAGE_HDR;
        d.e = page + pw;
        d.pages += 1;
        self.observe_mem();
    }

    // --------------------------------------------------------------- values

    /// Header words before the fields of a box (1 when tagged).
    #[inline]
    pub fn hdr_words(&self) -> u64 {
        self.config.tagged as u64
    }

    /// Encodes an integer value.
    #[inline]
    pub fn tag_int(&self, n: i64) -> Word {
        if self.config.tagged {
            scalar(n)
        } else {
            n as u64
        }
    }

    /// Decodes an integer value.
    #[inline]
    pub fn untag_int(&self, v: Word) -> i64 {
        if self.config.tagged {
            scalar_val(v)
        } else {
            v as i64
        }
    }

    /// Reads a word at any address (heap, stack, or large-object array).
    #[inline]
    pub fn read_addr(&self, addr: u64) -> Word {
        match space_of(addr) {
            Space::Heap => {
                let w = self.heap.read(addr);
                if self.config.poison && (w >> 48) == 0xDEAD {
                    panic!(
                        "poison read at {addr:#x}: region r{} was deallocated",
                        (w >> 16) & 0xFFFF_FFFF
                    );
                }
                w
            }
            Space::Stack => self.stack[(addr - STACK_BASE) as usize],
            Space::Large => {
                let id = Lobjs::id_of(addr);
                let off = (addr - Lobjs::addr_of(id)) as usize;
                match &self.lobjs.get(id).data {
                    LData::Arr(a) => a[off],
                    LData::Str(_) => panic!("word read from string large object"),
                }
            }
            Space::Data => panic!("word read from the data segment"),
        }
    }

    /// Writes a word at any address.
    #[inline]
    pub fn write_addr(&mut self, addr: u64, v: Word) {
        match space_of(addr) {
            Space::Heap => self.heap.write(addr, v),
            Space::Stack => self.stack[(addr - STACK_BASE) as usize] = v,
            Space::Large => {
                let id = Lobjs::id_of(addr);
                let off = (addr - Lobjs::addr_of(id)) as usize;
                match &mut self.lobjs.get_mut(id).data {
                    LData::Arr(a) => a[off] = v,
                    LData::Str(_) => panic!("word write to string large object"),
                }
            }
            Space::Data => panic!("word write to the data segment"),
        }
    }

    /// Allocates a box with `tag` and `fields` in region `r`.
    ///
    /// In untagged mode the tag word is omitted — fields only.
    pub fn alloc_boxed(&mut self, r: RegionId, tag: Tag, fields: &[Word]) -> Word {
        let n = fields.len() as u64 + self.hdr_words();
        let addr = self.alloc_words(r, n);
        let mut at = addr;
        if self.config.tagged {
            self.heap.write(at, tag.encode());
            at += 1;
        }
        for f in fields {
            self.heap.write(at, *f);
            at += 1;
        }
        ptr(addr)
    }

    /// Allocates a tuple/closure record.
    pub fn alloc_record(&mut self, r: RegionId, fields: &[Word]) -> Word {
        self.alloc_boxed(r, Tag::record(fields.len() as u32), fields)
    }

    /// Allocates a boxed real.
    pub fn alloc_real(&mut self, r: RegionId, x: f64) -> Word {
        let n = 1 + self.hdr_words();
        let addr = self.alloc_words(r, n);
        if self.config.tagged {
            self.heap.write(addr, Tag::real().encode());
        }
        self.heap.write(addr + self.hdr_words(), x.to_bits());
        ptr(addr)
    }

    /// Reads a boxed real.
    pub fn real_val(&self, v: Word) -> f64 {
        f64::from_bits(self.read_addr(ptr_addr(v) + self.hdr_words()))
    }

    /// Reads field `i` of a box.
    #[inline]
    pub fn field(&self, v: Word, i: u64) -> Word {
        self.read_addr(ptr_addr(v) + self.hdr_words() + i)
    }

    /// Writes field `i` of a box.
    #[inline]
    pub fn set_field(&mut self, v: Word, i: u64, x: Word) {
        self.write_addr(ptr_addr(v) + self.hdr_words() + i, x);
    }

    // -------------------------------------------------------------- strings

    /// Interns a constant string in the data segment; such values are
    /// never traversed, updated or copied by the collector (§2.5).
    pub fn intern_const_str(&mut self, s: &str) -> Word {
        if let Some(&i) = self.data_interned.get(s) {
            return ptr(DATA_BASE + i as u64);
        }
        let i = self.data_strings.len() as u32;
        self.data_strings.push(s.to_string());
        self.data_interned.insert(s.to_string(), i);
        ptr(DATA_BASE + i as u64)
    }

    /// Allocates a string as a large object associated with region `r`.
    pub fn alloc_string(&mut self, r: RegionId, s: String) -> Word {
        self.stats.lobj_words_allocated += s.len().div_ceil(8) as u64;
        let d = &mut self.regions[r.0 as usize];
        let id = self.lobjs.alloc(LData::Str(s), d.lobjs);
        d.lobjs = id + 1;
        self.observe_mem();
        ptr(Lobjs::addr_of(id))
    }

    /// Reads any string value (constant or large object).
    pub fn str_val(&self, v: Word) -> &str {
        let addr = ptr_addr(v);
        match space_of(addr) {
            Space::Data => &self.data_strings[(addr - DATA_BASE) as usize],
            Space::Large => match &self.lobjs.get(Lobjs::id_of(addr)).data {
                LData::Str(s) => s,
                LData::Arr(_) => panic!("array used as string"),
            },
            _ => panic!("string value outside data/large-object space"),
        }
    }

    // --------------------------------------------------------------- arrays

    /// Allocates an array of `n` copies of `init` in region `r`'s
    /// large-object list.
    pub fn alloc_array(&mut self, r: RegionId, n: usize, init: Word) -> Word {
        self.stats.lobj_words_allocated += n as u64;
        let d = &mut self.regions[r.0 as usize];
        let id = self.lobjs.alloc(LData::Arr(vec![init; n]), d.lobjs);
        d.lobjs = id + 1;
        self.observe_mem();
        ptr(Lobjs::addr_of(id))
    }

    /// Array length.
    pub fn arr_len(&self, v: Word) -> usize {
        match &self.lobjs.get(Lobjs::id_of(ptr_addr(v))).data {
            LData::Arr(a) => a.len(),
            LData::Str(_) => panic!("string used as array"),
        }
    }

    /// Array element address (for read/write through
    /// [`Rt::read_addr`]/[`Rt::write_addr`]).
    pub fn arr_elem_addr(&self, v: Word, i: usize) -> u64 {
        ptr_addr(v) + i as u64
    }

    // ------------------------------------------------------------ accounting

    /// Total current memory footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.heap.bytes()
            + self.stack.len() * 8
            + self.lobjs.bytes()
            + self.data_strings.iter().map(|s| s.len()).sum::<usize>()
    }

    /// Records the current footprint into the peak statistic.
    #[inline]
    pub fn observe_mem(&mut self) {
        let b = self.mem_bytes();
        self.stats.observe_bytes(b);
    }

    /// Materialized footprint in page-equivalents: region-heap pages
    /// backed by storage plus large-object bytes rounded up to whole
    /// pages. This is the measure capped by `RtConfig::max_heap_pages`;
    /// virgin (granted-but-untouched) headroom is free.
    pub fn quota_pages(&self) -> usize {
        let page_bytes = self.config.page_words() * 8;
        self.heap.materialized_pages() + self.lobjs.bytes().div_ceil(page_bytes)
    }

    /// `true` if a page cap is configured and the materialized footprint
    /// currently exceeds it.
    pub fn over_quota(&self) -> bool {
        self.config
            .max_heap_pages
            .is_some_and(|cap| self.quota_pages() > cap)
    }

    /// Best-effort release after a quota-forced collection: un-grants
    /// virgin headroom and returns the free arena tail, so a transient
    /// spike the collector already reclaimed stops counting against the
    /// cap. Only called on the quota-breach slow path — it must not
    /// perturb the GC schedule of runs that stay under their cap.
    pub fn quota_reclaim(&mut self) {
        let Some(cap) = self.config.max_heap_pages else {
            return;
        };
        let excess = self.quota_pages().saturating_sub(cap);
        if excess == 0 {
            return;
        }
        self.heap.sort_free_list();
        self.heap.release_tail(self.heap.virgin_pages() + excess);
    }

    /// Words still free in the page the region is currently filling.
    pub fn region_slack(&self, r: RegionId) -> u64 {
        if r.0 == self.cache_region {
            return self.cache_e - self.cache_a;
        }
        let d = &self.regions[r.0 as usize];
        if d.fp == NONE_ADDR {
            0
        } else {
            d.e - d.a
        }
    }

    /// `true` if `v` is a pointer into the runtime stack (a finite-region
    /// value); the collector treats these specially (§2.5).
    pub fn points_into_stack(&self, v: Word) -> bool {
        value::is_ptr(v) && space_of(ptr_addr(v)) == Space::Stack
    }

    /// Sanity check: every page is either on the free-list or owned by
    /// exactly one region (used by property tests).
    pub fn check_page_conservation(&self) -> Result<(), String> {
        let owned: usize = self.regions.iter().map(|d| d.pages).sum();
        let total = self.heap.total_pages();
        let free = self.heap.free_pages();
        if owned + free != total {
            return Err(format!(
                "page leak: {owned} owned + {free} free != {total} total"
            ));
        }
        // Walk each region chain and count.
        for (i, d) in self.regions.iter().enumerate() {
            if d.fp == NONE_ADDR {
                if d.pages != 0 {
                    return Err(format!("region {i} has no pages but counts {}", d.pages));
                }
                continue;
            }
            let n = self.heap.pages_from(d.fp).count();
            if n != d.pages {
                return Err(format!(
                    "region {i} chain has {n} pages but descriptor counts {}",
                    d.pages
                ));
            }
        }
        Ok(())
    }
}

/// The stride between large-object addresses (re-exported for the VM).
pub const LOBJ_ADDR_STRIDE: u64 = LOBJ_STRIDE;

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Rt {
        Rt::new(RtConfig::rgt())
    }

    /// Send audit: the parallel collector ([`crate::gc_par`]) hands `&mut
    /// Rt` to scoped worker threads through a raw-pointer wrapper whose
    /// `unsafe impl Send` is only sound if every piece of runtime state
    /// is itself `Send` — no `Rc`, no thread-bound interior mutability.
    /// This compiles (or doesn't); the assertions at runtime are free.
    #[test]
    fn runtime_state_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Rt>();
        assert_send::<crate::heap::Heap>();
        assert_send::<RegionDesc>();
        assert_send::<crate::lobj::Lobjs>();
        assert_send::<RtConfig>();
        assert_send::<RtStats>();
        assert_send::<crate::gc_sliced::SlicedGc>();
    }

    #[test]
    fn letregion_endregion_conserves_pages() {
        let mut rt = rt();
        let free0 = rt.heap.free_pages();
        let r = rt.letregion(1);
        assert_eq!(rt.heap.free_pages(), free0 - 1);
        // Fill enough to take several pages.
        for i in 0..1000 {
            let _ = rt.alloc_record(r, &[rt.tag_int(i), rt.tag_int(i)]);
        }
        assert!(rt.regions[0].pages > 1);
        rt.check_page_conservation().unwrap();
        rt.endregion();
        assert_eq!(rt.heap.free_pages(), rt.heap.total_pages());
    }

    #[test]
    fn records_round_trip() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let v = rt.alloc_record(r, &[rt.tag_int(10), rt.tag_int(-3)]);
        assert_eq!(rt.untag_int(rt.field(v, 0)), 10);
        assert_eq!(rt.untag_int(rt.field(v, 1)), -3);
        rt.set_field(v, 1, rt.tag_int(99));
        assert_eq!(rt.untag_int(rt.field(v, 1)), 99);
    }

    #[test]
    fn untagged_boxes_have_no_header() {
        let mut rt = Rt::new(RtConfig::r());
        let r = rt.letregion(0);
        let before = rt.regions[0].used_words;
        let _ = rt.alloc_record(r, &[rt.tag_int(1), rt.tag_int(2)]);
        assert_eq!(
            rt.regions[0].used_words - before,
            2,
            "untagged pair is 2 words"
        );

        let mut rt2 = Rt::new(RtConfig::rt());
        let r2 = rt2.letregion(0);
        let before = rt2.regions[0].used_words;
        let _ = rt2.alloc_record(r2, &[rt2.tag_int(1), rt2.tag_int(2)]);
        assert_eq!(
            rt2.regions[0].used_words - before,
            3,
            "tagged pair is 3 words"
        );
    }

    #[test]
    fn reals_round_trip() {
        for cfg in [RtConfig::r(), RtConfig::rgt()] {
            let mut rt = Rt::new(cfg);
            let r = rt.letregion(0);
            let v = rt.alloc_real(r, -2.5);
            assert_eq!(rt.real_val(v), -2.5);
        }
    }

    #[test]
    fn strings_and_interning() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let c1 = rt.intern_const_str("hello");
        let c2 = rt.intern_const_str("hello");
        assert_eq!(c1, c2, "constants are interned");
        let s = rt.alloc_string(r, "dyn".to_string());
        assert_eq!(rt.str_val(c1), "hello");
        assert_eq!(rt.str_val(s), "dyn");
        rt.endregion();
        // Constant survives region pop; the dynamic string is gone.
        assert_eq!(rt.str_val(c1), "hello");
        assert_eq!(rt.lobjs.live_count(), 0);
    }

    #[test]
    fn arrays_are_region_associated_large_objects() {
        let mut rt = rt();
        let r = rt.letregion(0);
        let a = rt.alloc_array(r, 5, rt.tag_int(7));
        assert_eq!(rt.arr_len(a), 5);
        let addr = rt.arr_elem_addr(a, 3);
        rt.write_addr(addr, rt.tag_int(42));
        assert_eq!(rt.untag_int(rt.read_addr(rt.arr_elem_addr(a, 3))), 42);
        assert_eq!(rt.untag_int(rt.read_addr(rt.arr_elem_addr(a, 0))), 7);
        rt.endregion();
        assert_eq!(rt.lobjs.live_count(), 0, "arrays freed with their region");
    }

    #[test]
    fn gc_trigger_fires_when_free_list_shrinks() {
        let mut rt = Rt::new(RtConfig {
            initial_pages: 9,
            ..RtConfig::rgt()
        });
        let r = rt.letregion(0);
        assert!(!rt.gc_needed);
        for i in 0..10_000 {
            let _ = rt.alloc_record(r, &[rt.tag_int(i)]);
            if rt.gc_needed {
                return;
            }
        }
        panic!("gc trigger never fired");
    }

    #[test]
    fn nested_regions_pop_lifo() {
        let mut rt = rt();
        let _r1 = rt.letregion(1);
        let _r2 = rt.letregion(2);
        let r3 = rt.letregion(3);
        let _ = rt.alloc_record(r3, &[rt.tag_int(1)]);
        assert_eq!(rt.region_depth(), 3);
        rt.pop_regions_to(1);
        assert_eq!(rt.region_depth(), 1);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn bump_cache_crosses_page_boundaries_and_flushes() {
        // 16-word pages, 14 payload words; tagged 4-word boxes → 3 per page.
        let mut rt = Rt::new(RtConfig {
            page_words_log2: 4,
            ..RtConfig::rgt()
        });
        let free0 = rt.heap.free_pages();
        let r = rt.letregion(0);
        for i in 0..11 {
            let _ = rt.alloc_record(r, &[rt.tag_int(i), rt.tag_int(i), rt.tag_int(i)]);
        }
        // Stats are exact even while the descriptor cursor is stale.
        assert_eq!(rt.stats.words_allocated, 44);
        assert_eq!(rt.stats.allocations, 11);
        rt.flush_alloc_cache();
        let d = &rt.regions[0];
        assert_eq!(d.used_words, 44);
        assert_eq!(d.pages, 4, "3 boxes per page, 11 boxes");
        rt.check_page_conservation().unwrap();
        rt.endregion();
        assert_eq!(rt.heap.free_pages(), free0, "all pages returned");
    }

    #[test]
    fn cache_does_not_leak_across_region_reuse() {
        // Region ids are reused stack indices: popping the cached region
        // must not let its cursor serve allocations in the successor.
        let mut rt = Rt::new(RtConfig {
            page_words_log2: 4,
            ..RtConfig::rgt()
        });
        let r1 = rt.letregion(1);
        let _ = rt.alloc_record(r1, &[rt.tag_int(1)]);
        rt.endregion();
        let r2 = rt.letregion(2);
        assert_eq!(r2.0, 0, "index reused");
        let before = rt.regions[0].used_words;
        let v = rt.alloc_record(r2, &[rt.tag_int(7), rt.tag_int(8)]);
        assert_eq!(rt.untag_int(rt.field(v, 0)), 7);
        assert_eq!(rt.untag_int(rt.field(v, 1)), 8);
        rt.flush_alloc_cache();
        assert_eq!(
            rt.regions[0].used_words - before,
            3,
            "tagged pair in the new region"
        );
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn slack_written_as_sentinel_on_page_extension() {
        let mut rt = Rt::new(RtConfig {
            page_words_log2: 4,
            ..RtConfig::rgt()
        }); // 16-word pages
        let r = rt.letregion(0);
        // Fill the first page so a sentinel is written before chaining.
        // 14 payload words per page; 4-word boxes (tag+3): 3 fit, 2 slack.
        for _ in 0..4 {
            let _ = rt.alloc_record(r, &[1, 1, 1].map(|_| rt.tag_int(0)));
        }
        let d = &rt.regions[0];
        assert_eq!(d.pages, 2);
        // The slack word of the first page must hold the sentinel tag.
        let first = d.fp;
        let slack_addr = first + PAGE_HDR + 12;
        let t = Tag::decode(rt.heap.read(slack_addr));
        assert_eq!(t.kind, crate::value::Kind::Sentinel);
    }
}
