//! Value representation: scalars, pointers, address spaces and tag words.
//!
//! A runtime value is one 64-bit [`Word`]:
//!
//! * **pointers** are even: `addr << 1` where `addr` is a word address;
//! * **scalars** are odd in tagged mode: `(n << 1) | 1`; in untagged mode
//!   integers are raw machine words (the garbage collector never runs
//!   untagged, so the distinction is only needed when it may).
//!
//! Word addresses are partitioned into address spaces by range: the region
//! heap, the runtime stack (activation records and finite regions), the
//! data segment (string constants — never traversed by the collector,
//! paper §2.5 case 3), and the large-object space (paper §3.1).
//!
//! Every boxed value in tagged mode starts with a **tag word**, which is
//! always odd; a forward pointer installed by the collector is an even
//! word, so "forward pointers can be distinguished from all other tags"
//! (paper §2.2). Tag kind 0 with size 0 is reserved as the page-slack
//! sentinel that lets the scan pointer skip the unused tail of a region
//! page.

/// A machine word.
pub type Word = u64;

/// Word-address of the start of the runtime stack space.
pub const STACK_BASE: u64 = 1 << 40;
/// Word-address of the start of the data segment.
pub const DATA_BASE: u64 = 1 << 41;
/// Word-address of the start of the large-object space.
pub const LOBJ_BASE: u64 = 1 << 42;
/// Word-address one past the large-object space.
pub const LOBJ_END: u64 = 1 << 43;
/// Each large object owns this many word addresses.
pub const LOBJ_STRIDE: u64 = 1 << 22;

/// The "null"/absent address used in page links and descriptors.
pub const NONE_ADDR: u64 = u64::MAX;

/// Returns the pointer value for a word address.
#[inline]
pub fn ptr(addr: u64) -> Word {
    debug_assert!(addr < (1 << 62));
    addr << 1
}

/// Returns the word address of a pointer value.
///
/// # Panics
///
/// Debug-panics if `v` is not a pointer (odd).
#[inline]
pub fn ptr_addr(v: Word) -> u64 {
    debug_assert!(is_ptr(v), "not a pointer: {v:#x}");
    v >> 1
}

/// `true` if the value is a pointer (even).
#[inline]
pub fn is_ptr(v: Word) -> bool {
    v & 1 == 0
}

/// Encodes a tagged scalar.
#[inline]
pub fn scalar(n: i64) -> Word {
    ((n as u64) << 1) | 1
}

/// Decodes a tagged scalar.
#[inline]
pub fn scalar_val(v: Word) -> i64 {
    (v as i64) >> 1
}

/// Address-space classification of a pointer target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Region heap (region pages).
    Heap,
    /// Runtime stack (finite regions).
    Stack,
    /// Data segment (constants).
    Data,
    /// Large-object space.
    Large,
}

/// Classifies a word address.
#[inline]
pub fn space_of(addr: u64) -> Space {
    if addr < STACK_BASE {
        Space::Heap
    } else if addr < DATA_BASE {
        Space::Stack
    } else if addr < LOBJ_BASE {
        Space::Data
    } else {
        Space::Large
    }
}

/// Kind of a boxed value, stored in its tag word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Page-slack sentinel (not a value).
    Sentinel = 0,
    /// Tuple / closure / constructor-argument record.
    Record = 1,
    /// Datatype constructor block (fields inlined).
    Con = 2,
    /// Boxed real; payload is one raw `f64` word (not scanned).
    Real = 3,
    /// Reference cell with one field.
    Ref = 4,
    /// Exception block; info is the exception id, one argument field.
    Exn = 5,
}

/// A decoded tag word.
///
/// Layout (64 bits, always odd):
/// `| info (24) | size (24) | mark (1) | kind (3) | 1 |`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag {
    /// The kind of box.
    pub kind: Kind,
    /// Number of *value* fields following the tag (for [`Kind::Real`], the
    /// payload is 1 raw word that must not be scanned).
    pub size: u32,
    /// Constructor index / exception id.
    pub info: u32,
    /// Constant mark used by the collector for values in finite regions
    /// (paper §2.5): marked values read as constants and are unmarked from
    /// the scan buffer after collection.
    pub mark: bool,
}

const KIND_SHIFT: u32 = 1;
const MARK_SHIFT: u32 = 4;
const SIZE_SHIFT: u32 = 5;
const INFO_SHIFT: u32 = 29;

impl Tag {
    /// Encodes the tag as an (odd) word.
    #[inline]
    pub fn encode(self) -> Word {
        1 | ((self.kind as u64) << KIND_SHIFT)
            | ((self.mark as u64) << MARK_SHIFT)
            | ((self.size as u64) << SIZE_SHIFT)
            | ((self.info as u64) << INFO_SHIFT)
    }

    /// Decodes a tag word.
    ///
    /// # Panics
    ///
    /// Debug-panics if `w` is even (a forward pointer, not a tag).
    #[inline]
    pub fn decode(w: Word) -> Tag {
        debug_assert!(w & 1 == 1, "decoding a forward pointer as a tag");
        let kind = match (w >> KIND_SHIFT) & 0b111 {
            0 => Kind::Sentinel,
            1 => Kind::Record,
            2 => Kind::Con,
            3 => Kind::Real,
            4 => Kind::Ref,
            5 => Kind::Exn,
            k => panic!("corrupt tag kind {k}"),
        };
        Tag {
            kind,
            mark: (w >> MARK_SHIFT) & 1 == 1,
            size: ((w >> SIZE_SHIFT) & 0xFF_FFFF) as u32,
            info: ((w >> INFO_SHIFT) & 0xFF_FFFF) as u32,
        }
    }

    /// A record tag with `size` fields.
    pub fn record(size: u32) -> Tag {
        Tag {
            kind: Kind::Record,
            size,
            info: 0,
            mark: false,
        }
    }

    /// A constructor tag.
    pub fn con(ctor: u32, size: u32) -> Tag {
        Tag {
            kind: Kind::Con,
            size,
            info: ctor,
            mark: false,
        }
    }

    /// The boxed-real tag.
    pub fn real() -> Tag {
        Tag {
            kind: Kind::Real,
            size: 1,
            info: 0,
            mark: false,
        }
    }

    /// The reference-cell tag.
    pub fn reference() -> Tag {
        Tag {
            kind: Kind::Ref,
            size: 1,
            info: 0,
            mark: false,
        }
    }

    /// An exception-block tag.
    pub fn exn(id: u32, size: u32) -> Tag {
        Tag {
            kind: Kind::Exn,
            size,
            info: id,
            mark: false,
        }
    }

    /// The page-slack sentinel tag word.
    pub fn sentinel_word() -> Word {
        Tag {
            kind: Kind::Sentinel,
            size: 0,
            info: 0,
            mark: false,
        }
        .encode()
    }

    /// Total number of words occupied by the box (tag + payload).
    #[inline]
    pub fn box_words(self) -> u64 {
        1 + self.size as u64
    }

    /// `true` if the payload consists of scannable value words.
    #[inline]
    pub fn scannable(self) -> bool {
        !matches!(self.kind, Kind::Real | Kind::Sentinel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for n in [0i64, 1, -1, 42, i64::MAX >> 2, i64::MIN >> 2] {
            assert_eq!(scalar_val(scalar(n)), n);
            assert!(!is_ptr(scalar(n)));
        }
    }

    #[test]
    fn pointers_round_trip_and_are_even() {
        for a in [0u64, 1, 4096, STACK_BASE + 17, DATA_BASE, LOBJ_BASE + 5] {
            assert_eq!(ptr_addr(ptr(a)), a);
            assert!(is_ptr(ptr(a)));
        }
    }

    #[test]
    fn tags_round_trip() {
        let cases = [
            Tag::record(3),
            Tag::con(7, 2),
            Tag::real(),
            Tag::reference(),
            Tag::exn(12, 1),
            Tag {
                kind: Kind::Con,
                size: 0xFF_FFFF,
                info: 0xAB_CDEF,
                mark: true,
            },
        ];
        for t in cases {
            let w = t.encode();
            assert_eq!(w & 1, 1, "tags must be odd");
            assert_eq!(Tag::decode(w), t);
        }
    }

    #[test]
    fn forward_pointers_distinguishable_from_tags() {
        // Any pointer value is even; any tag is odd.
        assert!(is_ptr(ptr(123)));
        assert_eq!(Tag::record(2).encode() & 1, 1);
    }

    #[test]
    fn spaces_classify() {
        assert_eq!(space_of(0), Space::Heap);
        assert_eq!(space_of(STACK_BASE), Space::Stack);
        assert_eq!(space_of(DATA_BASE + 3), Space::Data);
        assert_eq!(space_of(LOBJ_BASE), Space::Large);
    }

    #[test]
    fn sentinel_is_kind_zero() {
        let t = Tag::decode(Tag::sentinel_word());
        assert_eq!(t.kind, Kind::Sentinel);
        assert_eq!(t.size, 0);
    }

    #[test]
    fn real_payload_not_scannable() {
        assert!(!Tag::real().scannable());
        assert!(Tag::record(1).scannable());
        assert!(Tag::con(0, 1).scannable());
    }
}
