//! Region profiling (paper §3, Fig. 5): per-region memory over time.
//!
//! The profiler records, at each sample point (collections and explicit
//! ticks), the words in use per region *name* (the region variable a
//! region was created for), so multiple dynamic instances of one
//! `letregion` aggregate into one profile band — exactly what the ML Kit
//! region profiler plots.

use crate::region::RegionDesc;
use std::collections::BTreeMap;

/// One profile sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Sample ordinal (collection number or tick).
    pub time: u64,
    /// Words in use, keyed by region name.
    pub by_region: BTreeMap<u32, u64>,
}

/// The region profiler.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    clock: u64,
    samples: Vec<Sample>,
}

impl Profiler {
    /// Creates a profiler; a disabled profiler records nothing.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            clock: 0,
            samples: Vec::new(),
        }
    }

    /// `true` if sampling is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Takes a sample of the region stack.
    pub fn sample(&mut self, regions: &[RegionDesc]) {
        if !self.enabled {
            return;
        }
        let mut by_region: BTreeMap<u32, u64> = BTreeMap::new();
        for d in regions {
            *by_region.entry(d.name).or_default() += d.used_words;
        }
        self.clock += 1;
        self.samples.push(Sample {
            time: self.clock,
            by_region,
        });
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Region names ordered by their peak size, largest first.
    pub fn regions_by_peak(&self) -> Vec<(u32, u64)> {
        let mut peak: BTreeMap<u32, u64> = BTreeMap::new();
        for s in &self.samples {
            for (&name, &w) in &s.by_region {
                let e = peak.entry(name).or_default();
                *e = (*e).max(w);
            }
        }
        let mut v: Vec<(u32, u64)> = peak.into_iter().collect();
        v.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new(false);
        p.sample(&[]);
        assert!(p.samples().is_empty());
    }

    #[test]
    fn samples_aggregate_by_name() {
        let mut p = Profiler::new(true);
        let mut d1 = RegionDesc::empty(7);
        d1.used_words = 10;
        let mut d2 = RegionDesc::empty(7);
        d2.used_words = 5;
        let mut d3 = RegionDesc::empty(9);
        d3.used_words = 1;
        p.sample(&[d1, d2, d3]);
        assert_eq!(p.samples()[0].by_region[&7], 15);
        assert_eq!(p.regions_by_peak()[0], (7, 15));
    }
}
