//! Region descriptors and the region stack.
//!
//! A region descriptor is the paper's quadruple `(fp, a, e, b)` — first
//! page, allocation pointer, end pointer, region status — extended with
//! the large-object list head of §3.1, a profiling name, and bookkeeping
//! counters (page count for O(1) accounting, used words for the waste
//! metric of Table 3).
//!
//! Descriptors conceptually live in activation records; regions are pushed
//! and popped LIFO with the runtime stack (`letregion`/`end`), and region
//! polymorphism passes descriptors of *older* regions into functions. The
//! descriptor "address" used by origin pointers (paper §2.4) is the index
//! into the region stack.

use crate::value::NONE_ADDR;

/// Index of a region descriptor on the region stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// A region descriptor.
#[derive(Debug, Clone)]
pub struct RegionDesc {
    /// First-page pointer (`fp`).
    pub fp: u64,
    /// Allocation pointer (`a`) — the next free word in the newest page.
    pub a: u64,
    /// End pointer (`e`) — one past the usable end of the newest page.
    pub e: u64,
    /// Region status (`b`): `true` (`SOME`) while the region has unscanned
    /// values during a collection (its scan pointer is on the scan stack
    /// or it is currently being scanned).
    pub status: bool,
    /// Head of the large-object list (id + 1; 0 = none).
    pub lobjs: u32,
    /// Profiling name: the region variable this region was created for.
    pub name: u32,
    /// Number of pages owned.
    pub pages: usize,
    /// Payload words handed out by the allocator since the region was
    /// created or last collected (live + garbage, excludes slack).
    pub used_words: u64,
}

impl RegionDesc {
    /// A descriptor with no pages yet.
    pub fn empty(name: u32) -> Self {
        RegionDesc {
            fp: NONE_ADDR,
            a: 0,
            e: 0,
            status: false,
            lobjs: 0,
            name,
            pages: 0,
            used_words: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_descriptor() {
        let d = RegionDesc::empty(5);
        assert_eq!(d.fp, NONE_ADDR);
        assert!(!d.status);
        assert_eq!(d.name, 5);
        assert_eq!(d.pages, 0);
    }
}
