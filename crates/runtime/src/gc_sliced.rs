//! Incremental (sliced) Cheney-for-regions: bounded-pause collection.
//!
//! The stop-the-world collector ([`crate::gc::collect`]) scans the whole
//! live set in one pause. This module splits a collection into **slices**
//! whose scan work is bounded by `RtConfig::gc_slice_budget_words`: each
//! slice runs at a GC safe point, scans at most the budget (overshooting
//! by at most one object), and returns control to the mutator with the
//! collection still in progress. `Rt::gc_needed` stays `true` until the
//! final slice, so every safe point re-enters the collector until it
//! finishes.
//!
//! # Scheme (replicating collection)
//!
//! The flip ([`crate::gc::flip_all`]) detaches every region's pages into
//! the global from-space, whose page descriptors are stamped with
//! [`FROM_BIT`] in their origin word. Between slices the mutator keeps
//! running and may hold a **mix of from-space and to-space pointers** to
//! the same object: forwarding only clobbers the *header* word, so the
//! fields of a from-space original stay readable, and immutable reads
//! (record fields, real payloads) need no barrier. The spots where the
//! mix is observable are patched by two mutator barriers, both centralised
//! in the VM:
//!
//! * [`Rt::canon`] — follows the forward pointer to the canonical copy.
//!   Needed wherever the *header* is read (constructor-tag dispatch,
//!   exception ids) or pointer *identity* is compared (`RefEq`), and on
//!   every `ref` access so reads and writes agree on one copy.
//! * [`Rt::gc_write_barrier`] — eagerly evacuates a value before it is
//!   stored into a `ref` cell or array slot. A store into an
//!   already-scanned object would otherwise hide a from-space pointer
//!   from the collector; evacuating the value first means only canonical
//!   pointers are ever stored, and the copied object itself is scanned
//!   later via its region cursor. Cost per mutation: at most one object
//!   copy.
//!
//! # Resume state
//!
//! Instead of the scan stack + status bits of the stop-the-world drain,
//! the sliced drain keeps one **cursor per region**: the address up to
//! which the region's to-space has been scanned. A region is clean when
//! its cursor has caught the allocation pointer `a`. Because the mutator
//! allocates into to-space *behind* `a`, new objects (which may hold
//! from-space pointers in their fields) are picked up by the same cursor
//! scan — allocation during a sliced collection is "grey", not black, and
//! needs no allocation barrier. The drain loops over scan buffer, large
//! object queue and region cursors until a full pass makes no progress.
//!
//! Region pops between slices truncate the cursor vector (the hook in
//! [`Rt::endregion`]); region pushes lazily extend it at the next slice.
//! A pointer into from-space whose stamped origin id no longer names a
//! live region (the region was popped mid-collection — only dead values
//! can carry such pointers, by gc-safety of region inference) is left in
//! place. Queued large-object ids are dropped if the object was freed by
//! an `endregion` between slices.
//!
//! Stack boxes (finite regions) complicate resume: frames pop between
//! slices, so a queued scan-buffer slot may no longer hold the box it was
//! queued for. The VM reports every stack truncation through
//! [`Rt::note_stack_trunc`]; the **watermark** tracks the low-water mark
//! of the stack since the last slice, and the next slice prunes buffer
//! entries at or above it (their boxes are dead — live pointers never
//! dangle — or were re-created unmarked and will be re-queued via the
//! roots). Boxes created *above* the watermark and reached only through
//! the write barrier are scanned and unmarked eagerly instead of queued,
//! because a queued entry would be wrongly pruned.
//!
//! The root set is re-evacuated at the start of every slice (roots are
//! not covered by any barrier); only the drain is budgeted. A collection
//! that somehow fails to converge within [`MAX_SLICES`] slices finishes
//! with one unbudgeted slice, as does a program exiting with a collection
//! still in flight ([`finish_sliced`]).

use crate::gc::{
    evacuate_with, finish_collection, flip_all, scan_stack_box_with, sweep_lobjs_all, EvacPolicy,
    FlipInfo, GcState,
};
use crate::heap::{PAGE_HDR, PAGE_NEXT, PAGE_ORIGIN};
use crate::lobj::LData;
use crate::region::RegionId;
use crate::rt::Rt;
use crate::value::{is_ptr, ptr_addr, space_of, Kind, Space, Tag, Word, NONE_ADDR};

/// Origin-word bit marking a page as detached from-space of the current
/// sliced collection. Region ids fit in 32 bits, so the bit is
/// unambiguous; it is cleared before the pages return to the free-list.
pub(crate) const FROM_BIT: u64 = 1 << 32;

/// Safety valve: a collection that has not converged after this many
/// slices finishes with one unbudgeted slice.
const MAX_SLICES: u64 = 10_000;

/// State of an in-progress sliced collection, carried across slices in
/// [`Rt::sliced`].
#[derive(Debug)]
pub struct SlicedGc {
    flip: FlipInfo,
    st: GcState,
    /// Per-region scan cursor; `NONE_ADDR` = not started (lazily
    /// initialised to `fp + PAGE_HDR`). Clean iff equal to the region's
    /// allocation pointer.
    cursors: Vec<u64>,
    /// Low-water mark of `rt.stack.len()` since the last slice; buffer
    /// entries at or above it are pruned at the next slice start.
    watermark: usize,
    /// Element index to resume a large array whose scan a budget cut.
    arr_resume: Option<(u32, usize)>,
    /// Slices run so far in this collection.
    slices: u64,
}

impl SlicedGc {
    /// Region-pop hook: drop cursors of popped regions.
    pub(crate) fn on_region_pop(&mut self, nregions: usize) {
        self.cursors.truncate(nregions);
    }

    /// Stack-truncation hook body (see [`Rt::note_stack_trunc`]).
    pub(crate) fn note_stack_trunc(&mut self, low: usize) {
        if low < self.watermark {
            self.watermark = low;
        }
    }
}

/// Sliced policy: only objects on [`FROM_BIT`]-stamped pages move, back
/// into their origin region — unless that region was popped mid-
/// collection, in which case the (necessarily dead) value stays put.
#[derive(Clone, Copy)]
struct SlicedEvac;

impl EvacPolicy for SlicedEvac {
    #[inline]
    fn heap_dest(self, rt: &Rt, page: u64) -> Option<RegionId> {
        let origin = rt.heap.read(page + PAGE_ORIGIN);
        if origin & FROM_BIT == 0 {
            return None;
        }
        let rid = (origin & (FROM_BIT - 1)) as u32;
        if (rid as usize) < rt.regions.len() {
            Some(RegionId(rid))
        } else {
            None
        }
    }
}

impl Rt {
    /// `true` while a sliced collection is in progress.
    #[inline]
    pub fn sliced_active(&self) -> bool {
        self.sliced.is_some()
    }

    /// Canonicalises a value: while a sliced collection is in progress, a
    /// heap pointer whose object has been forwarded is replaced by the
    /// to-space pointer. Identity otherwise.
    #[inline]
    pub fn canon(&self, v: Word) -> Word {
        if self.sliced.is_none() || !is_ptr(v) {
            return v;
        }
        let addr = ptr_addr(v);
        if space_of(addr) != Space::Heap {
            return v;
        }
        let w = self.heap.read(addr);
        if is_ptr(w) {
            w
        } else {
            v
        }
    }

    /// Write barrier of the sliced collector: evacuates `v` before it is
    /// stored into a mutable cell, so only canonical pointers land in
    /// objects the collector may already have scanned. Identity when no
    /// sliced collection is in progress.
    pub fn gc_write_barrier(&mut self, v: Word) -> Word {
        if self.sliced.is_none() || !is_ptr(v) {
            return v;
        }
        let mut sl = self.sliced.take().expect("checked above");
        // Keep the GC work out of the mutator allocation statistics, and
        // make the descriptors accurate for the copy allocation.
        self.flush_alloc_cache();
        self.in_gc = true;
        let start = sl.st.scan_buffer.len().max(sl.st.sb_next);
        let nv = evacuate_with(self, &mut sl.st, v, SlicedEvac);
        // Stack boxes above the watermark were created after the last
        // slice; a queued entry for them would be pruned at the next
        // slice start, leaving the box marked but never scanned. Scan and
        // unmark them now instead (they re-queue normally if reached via
        // the roots of a later slice).
        let mut i = start;
        while i < sl.st.scan_buffer.len() {
            let slot = sl.st.scan_buffer[i];
            if slot >= sl.watermark {
                sl.st.scan_buffer.swap_remove(i);
                scan_stack_box_with(self, &mut sl.st, slot, SlicedEvac);
                let mut tag = Tag::decode(self.stack[slot]);
                tag.mark = false;
                self.stack[slot] = tag.encode();
            } else {
                i += 1;
            }
        }
        self.in_gc = false;
        self.sliced = Some(sl);
        nv
    }

    /// Stack-truncation hook: the VM calls this with the new (lower)
    /// stack length wherever frames are torn down, so the next slice can
    /// prune scan-buffer entries whose boxes were popped. No-op when no
    /// sliced collection is in progress.
    #[inline]
    pub fn note_stack_trunc(&mut self, low: usize) {
        if let Some(sl) = self.sliced.as_mut() {
            sl.note_stack_trunc(low);
        }
    }
}

/// Runs one slice of a sliced collection, starting the collection (flip)
/// if none is in progress. Returns `true` when the collection completed
/// with this slice; until then `rt.gc_needed` stays `true` and the caller
/// should keep calling at safe points with fresh roots.
///
/// # Panics
///
/// Panics if the runtime is untagged.
pub fn collect_sliced(rt: &mut Rt, root_slots: &[usize], extra_roots: &mut [Word]) -> bool {
    assert!(
        rt.config.tagged,
        "garbage collection requires tagged values"
    );
    if rt.sliced.is_none() {
        begin(rt);
    }
    step(rt, root_slots, extra_roots, false)
}

/// Forcibly completes an in-progress sliced collection with one
/// unbudgeted slice (program exit: the from-space must not outlive the
/// collection state). No-op if none is in progress.
pub fn finish_sliced(rt: &mut Rt, root_slots: &[usize], extra_roots: &mut [Word]) {
    if rt.sliced.is_some() {
        let done = step(rt, root_slots, extra_roots, true);
        debug_assert!(done, "unbudgeted slice must finish the collection");
    }
}

/// The flip: detach all pages into the global from-space, stamp them with
/// [`FROM_BIT`], give every region a fresh to-space page, and install the
/// cross-slice state.
fn begin(rt: &mut Rt) {
    rt.flush_alloc_cache();
    if rt.config.heap_shrink_factor.is_some() {
        // Same reasoning as the stop-the-world collector: to-space should
        // fill the arena bottom-up so the post-collection shrink finds
        // its free pages at the physical tail.
        rt.heap.sort_free_list();
    }
    let flip = flip_all(rt);
    let mut p = flip.fs_head;
    while p != NONE_ADDR {
        let o = rt.heap.read(p + PAGE_ORIGIN);
        rt.heap.write(p + PAGE_ORIGIN, o | FROM_BIT);
        p = rt.heap.read(p + PAGE_NEXT);
    }
    let nregions = rt.regions.len();
    rt.sliced = Some(Box::new(SlicedGc {
        flip,
        st: GcState::new(),
        cursors: vec![NONE_ADDR; nregions],
        watermark: rt.stack.len(),
        arr_resume: None,
        slices: 0,
    }));
}

fn step(rt: &mut Rt, root_slots: &[usize], extra_roots: &mut [Word], force: bool) -> bool {
    let t0 = std::time::Instant::now();
    rt.in_gc = true;
    rt.flush_alloc_cache();
    let mut sl = rt.sliced.take().expect("no sliced collection in progress");
    sl.slices += 1;
    let budget = if force || sl.slices > MAX_SLICES {
        u64::MAX
    } else {
        rt.config
            .gc_slice_budget_words
            .expect("sliced collection without a slice budget")
    };

    // ---- prune state invalidated by the mutator since the last slice.
    let wm = sl.watermark;
    let st = &mut sl.st;
    if st.scan_buffer.iter().any(|&s| s >= wm) {
        let mut kept_scanned = 0usize;
        let mut w = 0usize;
        for i in 0..st.scan_buffer.len() {
            let slot = st.scan_buffer[i];
            if slot < wm {
                st.scan_buffer[w] = slot;
                w += 1;
                if i < st.sb_next {
                    kept_scanned += 1;
                }
            }
        }
        st.scan_buffer.truncate(w);
        st.sb_next = kept_scanned;
    }
    sl.watermark = rt.stack.len();
    sl.cursors.resize(rt.regions.len(), NONE_ADDR);
    // The shared evacuation routine maintains the stop-the-world drain's
    // scan stack; the sliced drain uses region cursors instead.
    sl.st.scan_stack.clear();
    if let Some((id, _)) = sl.arr_resume {
        if !rt.lobjs.is_live(id) {
            sl.arr_resume = None;
        }
    }

    // ---- re-evacuate the root set (unbudgeted; roots have no barrier).
    for &slot in root_slots {
        let v = rt.stack[slot];
        rt.stack[slot] = evacuate_with(rt, &mut sl.st, v, SlicedEvac);
    }
    for v in extra_roots.iter_mut() {
        *v = evacuate_with(rt, &mut sl.st, *v, SlicedEvac);
    }

    // ---- budgeted drain.
    let mut work = 0u64;
    let finished = drain_budgeted(rt, &mut sl, budget, &mut work);
    if work > rt.stats.gc_max_slice_scan_words {
        rt.stats.gc_max_slice_scan_words = work;
    }

    if finished {
        crate::gc::unmark_scan_buffer(rt, &sl.st.scan_buffer);
        let lobjs_freed = sweep_lobjs_all(rt);
        // Statuses were set by the shared evacuation routine but never
        // cleared (the cursor drain ignores them); reset for the next
        // collection.
        for d in rt.regions.iter_mut() {
            d.status = false;
        }
        // Clear the from-space stamps before the pages return to the
        // free-list, so a stale origin can never masquerade as
        // from-space in a later collection.
        let mut p = sl.flip.fs_head;
        while p != NONE_ADDR {
            let o = rt.heap.read(p + PAGE_ORIGIN);
            rt.heap.write(p + PAGE_ORIGIN, o & !FROM_BIT);
            p = rt.heap.read(p + PAGE_NEXT);
        }
        rt.stats.gc_slices += sl.slices;
        finish_collection(rt, &sl.flip, sl.st.copied, lobjs_freed, t0);
        true
    } else {
        rt.stats.record_pause(t0.elapsed().as_nanos() as u64);
        rt.in_gc = false;
        rt.sliced = Some(sl);
        false
    }
}

/// Drains scan buffer, large-object queue and region cursors until a full
/// pass makes no progress (collection finished, returns `true`) or the
/// budget is spent (returns `false`; resume state is in `sl`).
fn drain_budgeted(rt: &mut Rt, sl: &mut SlicedGc, budget: u64, work: &mut u64) -> bool {
    loop {
        let mut progressed = false;
        if let Some((id, at)) = sl.arr_resume.take() {
            progressed = true;
            if !scan_array_budgeted(rt, sl, id, at, budget, work) {
                return false;
            }
        }
        while sl.st.sb_next < sl.st.scan_buffer.len() {
            if *work >= budget {
                return false;
            }
            let slot = sl.st.scan_buffer[sl.st.sb_next];
            sl.st.sb_next += 1;
            let tag = Tag::decode(rt.stack[slot]);
            *work += 1 + tag.size as u64;
            scan_stack_box_with(rt, &mut sl.st, slot, SlicedEvac);
            progressed = true;
        }
        while sl.st.lq_next < sl.st.lobj_queue.len() {
            if *work >= budget {
                return false;
            }
            let id = sl.st.lobj_queue[sl.st.lq_next];
            sl.st.lq_next += 1;
            progressed = true;
            if !scan_array_budgeted(rt, sl, id, 0, budget, work) {
                return false;
            }
        }
        for r in 0..sl.cursors.len() {
            match scan_region_budgeted(rt, sl, r, budget, work) {
                ScanOut::Clean => {}
                ScanOut::Progress => progressed = true,
                ScanOut::Budget => return false,
            }
        }
        if !progressed {
            return true;
        }
    }
}

/// Scans large array `id` from element `at`, one budget unit per element.
/// Returns `false` on a budget cut (resume point saved). Ids freed by an
/// `endregion` between slices are skipped.
fn scan_array_budgeted(
    rt: &mut Rt,
    sl: &mut SlicedGc,
    id: u32,
    at: usize,
    budget: u64,
    work: &mut u64,
) -> bool {
    if !rt.lobjs.is_live(id) {
        return true;
    }
    let len = match &rt.lobjs.get(id).data {
        LData::Arr(a) => a.len(),
        LData::Str(_) => return true,
    };
    for i in at..len {
        if *work >= budget {
            sl.arr_resume = Some((id, i));
            return false;
        }
        *work += 1;
        let v = match &rt.lobjs.get(id).data {
            LData::Arr(a) => a[i],
            LData::Str(_) => unreachable!(),
        };
        let nv = evacuate_with(rt, &mut sl.st, v, SlicedEvac);
        match &mut rt.lobjs.get_mut(id).data {
            LData::Arr(a) => a[i] = nv,
            LData::Str(_) => unreachable!(),
        }
    }
    true
}

enum ScanOut {
    /// Cursor already at the allocation pointer.
    Clean,
    /// Cursor advanced (and caught the allocation pointer).
    Progress,
    /// Budget cut; cursor saved mid-region.
    Budget,
}

/// Advances region `r`'s cursor towards its allocation pointer, charging
/// each object's `box_words` against the budget (checked *before* each
/// object, so a slice overshoots by at most one object).
fn scan_region_budgeted(
    rt: &mut Rt,
    sl: &mut SlicedGc,
    r: usize,
    budget: u64,
    work: &mut u64,
) -> ScanOut {
    let d = &rt.regions[r];
    if d.fp == NONE_ADDR {
        return ScanOut::Clean;
    }
    let mut s = sl.cursors[r];
    if s == NONE_ADDR {
        s = d.fp + PAGE_HDR;
    }
    if s == d.a {
        sl.cursors[r] = s;
        return ScanOut::Clean;
    }
    let pw = rt.heap.page_words() as u64;
    // `s` may sit exactly one past a full page's end; `s - 1` is always
    // inside the page the cursor logically points into.
    let mut page_end = rt.heap.page_base(s - 1) + pw;
    let mut out = ScanOut::Progress;
    loop {
        if s == rt.regions[r].a {
            break;
        }
        if s == page_end {
            let next = rt.heap.read(page_end - pw + PAGE_NEXT);
            debug_assert_ne!(next, NONE_ADDR, "scan ran past the region");
            s = next + PAGE_HDR;
            page_end = next + pw;
            continue;
        }
        let w = rt.heap.read(s);
        let tag = Tag::decode(w);
        if tag.kind == Kind::Sentinel {
            let next = rt.heap.read(page_end - pw + PAGE_NEXT);
            debug_assert_ne!(next, NONE_ADDR, "sentinel on the last page");
            s = next + PAGE_HDR;
            page_end = next + pw;
            continue;
        }
        if *work >= budget {
            out = ScanOut::Budget;
            break;
        }
        *work += tag.box_words();
        if tag.scannable() {
            for i in 0..tag.size as u64 {
                let v = rt.heap.read(s + 1 + i);
                let nv = evacuate_with(rt, &mut sl.st, v, SlicedEvac);
                rt.heap.write(s + 1 + i, nv);
            }
        }
        s += tag.box_words();
    }
    sl.cursors[r] = s;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RtConfig;
    use crate::value::{ptr, STACK_BASE};

    fn rt(budget: u64) -> Rt {
        Rt::new(RtConfig {
            initial_pages: 16,
            gc_slice_budget_words: Some(budget),
            ..RtConfig::rgt()
        })
    }

    fn build_list(rt: &mut Rt, r: RegionId, n: i64) -> Word {
        let mut tail = rt.tag_int(0);
        for i in (1..=n).rev() {
            let head = rt.tag_int(i);
            tail = rt.alloc_boxed(r, Tag::con(1, 2), &[head, tail]);
        }
        tail
    }

    fn list_sum(rt: &Rt, mut v: Word) -> i64 {
        let mut sum = 0;
        while is_ptr(v) {
            sum += rt.untag_int(rt.field(v, 0));
            v = rt.field(v, 1);
        }
        sum
    }

    #[test]
    fn sliced_collection_preserves_data_and_bounds_slice_work() {
        const BUDGET: u64 = 64;
        let mut rt = rt(BUDGET);
        let r = rt.letregion(0);
        for _ in 0..50 {
            let _ = build_list(&mut rt, r, 100);
        }
        let live = build_list(&mut rt, r, 500);
        rt.stack.push(live);
        let root = rt.stack.len() - 1;
        let mut done = collect_sliced(&mut rt, &[root], &mut []);
        let mut gaps = 0;
        while !done {
            gaps += 1;
            assert!(gaps < 10_000, "sliced collection failed to converge");
            // The mutator keeps running between slices: extend the live
            // list (grey allocation, scanned via the region cursor) and
            // drop some garbage.
            let head = rt.stack[root];
            let head = rt.alloc_boxed(r, Tag::con(1, 2), &[rt.tag_int(0), head]);
            rt.stack[root] = head;
            let _ = rt.alloc_record(r, &[rt.tag_int(9)]);
            done = collect_sliced(&mut rt, &[root], &mut []);
        }
        assert!(gaps >= 2, "budget {BUDGET} should take several slices");
        assert_eq!(rt.stats.gc_count, 1);
        assert_eq!(rt.stats.gc_slices, gaps + 1);
        assert_eq!(
            rt.stats.gc_pause_hist.count(),
            rt.stats.gc_slices,
            "every slice is one recorded pause"
        );
        // The drain never overshoots the budget by more than one object.
        let max_obj = rt.config.page_data_words() as u64;
        assert!(
            rt.stats.gc_max_slice_scan_words <= BUDGET + max_obj,
            "slice scanned {} words (budget {BUDGET} + max object {max_obj})",
            rt.stats.gc_max_slice_scan_words
        );
        assert_eq!(list_sum(&rt, rt.stack[root]), 500 * 501 / 2);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn write_barrier_rescues_value_stored_mid_collection() {
        let mut rt = rt(1);
        let r = rt.letregion(0);
        let cell = rt.alloc_boxed(r, Tag::reference(), &[rt.tag_int(0)]);
        let live = build_list(&mut rt, r, 100);
        rt.stack.push(cell);
        rt.stack.push(live);
        // Held only in this variable — invisible to the collector until
        // the barrier stores it.
        let secret = rt.alloc_record(r, &[rt.tag_int(42)]);
        assert!(!collect_sliced(&mut rt, &[0, 1], &mut []));
        // The old pointer canonicalises to the evacuated root.
        assert_eq!(rt.canon(cell), rt.stack[0]);
        // Mutate through the barriers while the collection is paused.
        let cell_c = rt.canon(rt.stack[0]);
        let v = rt.gc_write_barrier(secret);
        rt.set_field(cell_c, 0, v);
        while rt.sliced_active() {
            collect_sliced(&mut rt, &[0, 1], &mut []);
        }
        let got = rt.field(rt.stack[0], 0);
        assert_eq!(rt.untag_int(rt.field(got, 0)), 42);
        assert_eq!(list_sum(&rt, rt.stack[1]), 100 * 101 / 2);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn popped_stack_boxes_are_pruned_via_the_watermark() {
        let mut rt = rt(1);
        let r = rt.letregion(0);
        let live = build_list(&mut rt, r, 100);
        rt.stack.push(live);
        let inner = rt.alloc_record(r, &[rt.tag_int(7)]);
        // A finite-region box on the stack, rooted by a stack pointer.
        let base = rt.stack.len();
        rt.stack.push(Tag::record(1).encode());
        rt.stack.push(inner);
        rt.stack.push(ptr(STACK_BASE + base as u64));
        let box_root = base + 2;
        assert!(!collect_sliced(&mut rt, &[0, box_root], &mut []));
        // The frame holding the box is popped between slices.
        rt.stack.truncate(base);
        rt.note_stack_trunc(base);
        while rt.sliced_active() {
            collect_sliced(&mut rt, &[0], &mut []);
        }
        assert_eq!(list_sum(&rt, rt.stack[0]), 100 * 101 / 2);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn region_pop_mid_collection_truncates_cursors() {
        let mut rt = rt(32);
        let r1 = rt.letregion(1);
        let live = build_list(&mut rt, r1, 200);
        rt.stack.push(live);
        let r2 = rt.letregion(2);
        for _ in 0..10 {
            let _ = build_list(&mut rt, r2, 100);
        }
        let _ = rt.alloc_array(r2, 50, rt.tag_int(0));
        assert!(!collect_sliced(&mut rt, &[0], &mut []));
        // The garbage region ends between slices: its to-space pages are
        // freed now, its from-space pages at the end of the collection,
        // and its large object with it.
        rt.endregion();
        while rt.sliced_active() {
            collect_sliced(&mut rt, &[0], &mut []);
        }
        assert_eq!(rt.region_depth(), 1);
        assert_eq!(list_sum(&rt, rt.stack[0]), 200 * 201 / 2);
        assert_eq!(rt.lobjs.live_count(), 0);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn forced_finish_completes_with_extra_root() {
        let mut rt = rt(1);
        let r = rt.letregion(0);
        let live = build_list(&mut rt, r, 100);
        let mut extra = [live];
        assert!(!collect_sliced(&mut rt, &[], &mut extra));
        finish_sliced(&mut rt, &[], &mut extra);
        assert!(!rt.sliced_active());
        assert!(!rt.gc_needed);
        assert_eq!(list_sum(&rt, extra[0]), 100 * 101 / 2);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn sliced_result_matches_stop_the_world() {
        // The same program run under the sliced and the stop-the-world
        // collector must see the same values.
        let run = |budget: Option<u64>| -> (i64, u64) {
            let mut rt = Rt::new(RtConfig {
                initial_pages: 16,
                gc_slice_budget_words: budget,
                ..RtConfig::rgt()
            });
            let r = rt.letregion(0);
            for _ in 0..30 {
                let _ = build_list(&mut rt, r, 100);
            }
            let live = build_list(&mut rt, r, 300);
            rt.stack.push(live);
            match budget {
                Some(_) => while !collect_sliced(&mut rt, &[0], &mut []) {},
                None => crate::gc::collect(&mut rt, &[0], &mut []),
            }
            let d = &rt.regions[0];
            (list_sum(&rt, rt.stack[0]), d.used_words)
        };
        let stw = run(None);
        let sliced = run(Some(48));
        assert_eq!(stw, sliced, "(sum, surviving words) must agree");
    }

    #[test]
    fn finite_region_constant_marks_span_slices_and_unmark() {
        // A finite-region (stack) box is marked constant (§2.5) when the
        // collector first reaches it. Under the sliced collector that
        // mark must persist *between* slices — roots are re-evacuated at
        // every slice start, and without the mark the slot would be
        // re-queued on the scan buffer each time — and must still come
        // off in the final unmarking pass.
        let mut rt = rt(1);
        let r = rt.letregion(0);
        let filler = build_list(&mut rt, r, 200);
        rt.stack.push(filler);
        let inner = rt.alloc_record(r, &[rt.tag_int(7)]);
        let base = rt.stack.len();
        rt.stack.push(Tag::record(1).encode());
        rt.stack.push(inner);
        let box_ptr = ptr(STACK_BASE + base as u64);
        rt.stack.push(box_ptr);
        let roots = [0, base + 2];
        let mut done = collect_sliced(&mut rt, &roots, &mut []);
        assert!(!done, "budget 1 must not finish in one slice");
        let mut marked_slices = 0;
        while !done {
            if Tag::decode(rt.stack[base]).mark {
                marked_slices += 1;
            }
            done = collect_sliced(&mut rt, &roots, &mut []);
        }
        assert!(
            marked_slices >= 2,
            "finite box must stay constant-marked across slices"
        );
        assert!(
            !Tag::decode(rt.stack[base]).mark,
            "constant mark must come off in the final unmarking pass"
        );
        assert_eq!(rt.stack[base + 2], box_ptr, "finite boxes never move");
        let inner2 = rt.stack[base + 1];
        assert_ne!(inner2, inner, "box field must have been evacuated");
        assert_eq!(rt.untag_int(rt.field(inner2, 0)), 7);
        assert_eq!(list_sum(&rt, rt.stack[0]), 200 * 201 / 2);
        rt.check_page_conservation().unwrap();
    }

    #[test]
    fn large_objects_traversed_not_copied_and_swept_sliced() {
        // Mirror of gc.rs `large_objects_traversed_not_copied_and_swept`
        // under the bounded-pause collector: the live array keeps its
        // address across every slice (the mutator may index it between
        // slices), its elements are still traversed, the unreachable
        // array is swept at the end, and the survivor's mark is cleared.
        use crate::lobj::Lobjs;
        use crate::value::ptr_addr;
        let mut rt = rt(8);
        let r = rt.letregion(0);
        let elem = rt.alloc_record(r, &[rt.tag_int(5)]);
        let arr = rt.alloc_array(r, 3, rt.tag_int(0));
        rt.write_addr(rt.arr_elem_addr(arr, 0), elem);
        let _dead = rt.alloc_array(r, 100, rt.tag_int(0));
        let filler = build_list(&mut rt, r, 300);
        rt.stack.push(arr);
        rt.stack.push(filler);
        assert_eq!(rt.lobjs.live_count(), 2);
        let mut slices = 1u64;
        let mut done = collect_sliced(&mut rt, &[0, 1], &mut []);
        while !done {
            assert_eq!(rt.stack[0], arr, "large object moved mid-collection");
            slices += 1;
            done = collect_sliced(&mut rt, &[0, 1], &mut []);
        }
        assert!(slices >= 2, "collection must actually have been sliced");
        assert_eq!(rt.stack[0], arr, "large object must not move");
        assert_eq!(rt.lobjs.live_count(), 1, "dead array not swept");
        let elem2 = rt.read_addr(rt.arr_elem_addr(arr, 0));
        assert_ne!(elem2, elem, "array element must have been evacuated");
        assert_eq!(rt.untag_int(rt.field(elem2, 0)), 5);
        assert!(
            !rt.lobjs.get(Lobjs::id_of(ptr_addr(arr))).marked,
            "surviving large object must be unmarked for the next cycle"
        );
        assert_eq!(list_sum(&rt, rt.stack[1]), 300 * 301 / 2);
        rt.check_page_conservation().unwrap();
    }
}
