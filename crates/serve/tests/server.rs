//! End-to-end server tests: mixed quota outcomes under concurrency,
//! bit-identical counters vs standalone execution, tenant isolation
//! (a neighbour breaching its quota must not perturb anyone else), and
//! the overload matrix — flood (bounded queue + typed `Overloaded`),
//! rate limiting, wall-clock deadlines (engine-identical), graceful
//! drain (zero dropped in-flight), and reader hygiene (idle/stall typed
//! closes, mid-frame EOF reaping).

use kit::{Compiler, DispatchMode, Mode};
use kit_serve::server::{RateLimit, Server, ServerConfig, ShedPolicy};
use kit_serve::wire::Status;
use kit_serve::{check_against_standalone, run_load, Client, LoadProgram, LoadSpec};
use std::time::Duration;

const FIB: &str = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 13";
const BUILD: &str = "fun build 0 = nil | build n = n :: build (n-1)\nval it = length (build 40000)";
/// Runs forever (no result); only fuel or a deadline stops it.
const SPIN: &str = "fun loop n = loop (n + 1)\nval it = loop 0";

fn prog(name: &str, src: &str, fuel: Option<u64>, pages: Option<usize>) -> LoadProgram {
    LoadProgram {
        name: name.to_string(),
        mode: Mode::Rgt,
        dispatch: DispatchMode::Threaded,
        fuel,
        max_heap_pages: pages,
        deadline_ms: None,
        tenant: String::new(),
        src: src.to_string(),
    }
}

fn start(workers: usize) -> kit_serve::ServerHandle {
    start_with(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
}

fn start_with(config: ServerConfig) -> kit_serve::ServerHandle {
    Server::bind("127.0.0.1:0", config).expect("bind").spawn()
}

#[test]
fn mixed_outcomes_under_load_match_standalone() {
    let handle = start(4);
    let mix = vec![
        prog("fib", FIB, None, None),
        prog("fib-fuel", FIB, Some(1_000), None),
        prog("build-quota", BUILD, None, Some(8)),
    ];
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 96,
        sessions: 24,
        conns: 6,
        mix: mix.clone(),
    })
    .expect("load run");

    assert_eq!(report.requests, 96);
    assert!(report.rps > 0.0);
    assert!(report.p99_ms >= report.p50_ms);
    let by_name = |n: &str| {
        report
            .per_program
            .iter()
            .find(|p| p.name == n)
            .unwrap_or_else(|| panic!("missing program {n}"))
    };
    assert_eq!(by_name("fib").status, Status::Ok);
    assert_eq!(by_name("fib").result, "233");
    assert_eq!(by_name("fib-fuel").status, Status::OutOfFuel);
    assert_eq!(by_name("build-quota").status, Status::QuotaExceeded);
    // Nothing was shed: the queue bound is far above this load.
    assert_eq!(report.shed, 0);
    assert_eq!(report.rate_limited, 0);
    assert_eq!(report.deadline_exceeded, 0);
    // The load driver already enforced per-program uniformity; pin the
    // absolute values to a standalone run too.
    let rows = check_against_standalone(handle.addr(), &mix).expect("standalone check");
    assert_eq!(rows.len(), 3);

    // All responses came from the worker pool we configured.
    let stats = handle.worker_stats();
    assert_eq!(stats.len(), 4);
    let total: u64 = stats.iter().map(|(requests, _)| requests).sum();
    assert_eq!(total, 96 + 3); // load run + the check's three calls

    handle.shutdown();
}

#[test]
fn quota_breach_is_not_observable_by_concurrent_tenants() {
    // A well-behaved tenant's counters while a noisy neighbour breaches
    // its memory quota must equal the counters of the same program run
    // alone in a fresh process-equivalent (standalone Compiler).
    let handle = start(2);
    let mix = vec![
        prog("victim", FIB, None, None),
        prog("noisy", BUILD, None, Some(8)),
    ];
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 40,
        sessions: 8,
        conns: 4,
        mix,
    })
    .expect("load run");

    let victim = report
        .per_program
        .iter()
        .find(|p| p.name == "victim")
        .expect("victim row");
    let alone = Compiler::new(Mode::Rgt)
        .with_dispatch(DispatchMode::Threaded)
        .run_source(FIB)
        .expect("standalone run");
    assert_eq!(victim.status, Status::Ok);
    assert_eq!(victim.result, alone.result);
    assert_eq!(victim.instructions, alone.instructions);
    assert_eq!(victim.gc_count, alone.stats.gc_count);
    assert_eq!(victim.gc_copied_words, alone.stats.gc_copied_words);
    handle.shutdown();
}

#[test]
fn compile_errors_and_bad_frames_get_typed_statuses() {
    let handle = start(1);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let resp = client
        .call(
            Mode::Rgt,
            DispatchMode::Threaded,
            None,
            None,
            "val it = undefined_name",
        )
        .expect("call");
    assert_eq!(resp.status, Status::CompileError);
    assert!(!resp.result.is_empty());

    // A syntactically valid frame with an unknown mode byte gets a
    // BadRequest response before the connection closes.
    use std::io::Write;
    use std::net::TcpStream;
    let mut raw = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut payload = kit_serve::wire::encode_request(&kit_serve::Request {
        req_id: 9,
        mode: Mode::R,
        dispatch: DispatchMode::Match,
        fuel: None,
        max_heap_pages: None,
        deadline_ms: None,
        tenant: String::new(),
        src: "val it = 1".to_string(),
    });
    payload[9] = 250; // clobber the mode byte
    kit_serve::wire::write_frame(&mut raw, &payload).expect("write frame");
    raw.flush().expect("flush");
    let resp = kit_serve::wire::read_response(&mut raw).expect("read response");
    assert_eq!(resp.status, Status::BadRequest);
    handle.shutdown();
}

#[test]
fn program_cache_shares_one_compilation() {
    // Same source, mode and dispatch from many connections: every
    // response must be identical (same Arc'd PreparedProgram) and the
    // server must survive the burst with exactly one cached entry's
    // worth of behavior — counters uniform across all 64 sessions.
    let handle = start(4);
    let mix = vec![prog("fib", FIB, None, None)];
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 64,
        sessions: 64,
        conns: 8,
        mix,
    })
    .expect("load run");
    assert_eq!(report.per_program[0].requests, 64);
    assert_eq!(report.per_program[0].status, Status::Ok);
    assert_eq!(handle.cache_size(), 1);
    handle.shutdown();
}

// ------------------------------------------------------ overload matrix

#[test]
fn flood_is_shed_with_typed_overloaded_and_healthy_work_stays_exact() {
    // Two workers, a tiny queue, and far more in-flight work than either
    // can hold: the surplus must be shed with typed `Overloaded`
    // responses (carrying retry advice), the queue depth must respect
    // the bound, and the responses that *did* execute must still be
    // bit-identical per program — overload never corrupts results.
    let handle = start_with(ServerConfig {
        workers: 2,
        queue_cap: 4,
        ..ServerConfig::default()
    });
    let mix = vec![prog("fib", FIB, None, None)];
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 256,
        sessions: 64, // 64 in flight into a 2-worker, 4-slot queue
        conns: 8,
        mix: mix.clone(),
    })
    .expect("flood run");

    assert_eq!(report.requests, 256, "every request got a typed answer");
    let p = &report.per_program[0];
    assert!(p.shed > 0, "a 64-deep flood into queue_cap=4 must shed");
    assert!(p.executed > 0, "admitted work still executes");
    assert_eq!(p.executed + p.shed, 256);
    assert_eq!(p.status, Status::Ok, "executed responses are uniform Ok");
    assert_eq!(p.result, "233");
    // Reported depths are sampled at admission, so they are bounded by
    // the configured cap.
    assert!(
        report.queue_depth_p99 <= 4,
        "queue depth p99 {} exceeds the configured bound",
        report.queue_depth_p99
    );
    let (shed, ..) = handle.overload_stats();
    assert_eq!(shed as usize, p.shed);

    // Retry advice is present on a directly-observed shed response.
    // (Flood again with a single pipelined burst and look at one.)
    let rows = check_against_standalone(handle.addr(), &mix).expect("post-flood check");
    assert_eq!(rows.len(), 1, "server answers exactly after the flood");
    handle.shutdown();
}

#[test]
fn tenant_share_shedding_keeps_the_polite_tenant_served() {
    // A hog floods; a polite tenant trickles. Under TenantShare the
    // queue sheds the hog's requests, so the polite tenant keeps
    // executing (and its executed responses stay uniform).
    let handle = start_with(ServerConfig {
        workers: 2,
        queue_cap: 8,
        shed_policy: ShedPolicy::TenantShare,
        ..ServerConfig::default()
    });
    let mut hog = prog("hog", FIB, None, None);
    hog.tenant = "hog".to_string();
    let mut polite = prog("polite", FIB, None, None);
    polite.tenant = "polite".to_string();
    // Mix weights: 7 hog entries to 1 polite, so the hog dominates the
    // queue and is the eviction target.
    let mut mix = vec![polite];
    for i in 0..7 {
        let mut h = hog.clone();
        h.name = format!("hog{i}");
        mix.push(h);
    }
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 512,
        sessions: 96,
        conns: 8,
        mix,
    })
    .expect("tenant flood");

    let polite_row = report
        .per_program
        .iter()
        .find(|p| p.name == "polite")
        .expect("polite row");
    let hog_shed: usize = report
        .per_program
        .iter()
        .filter(|p| p.name.starts_with("hog"))
        .map(|p| p.shed)
        .sum();
    assert!(hog_shed > 0, "the hog must absorb the shedding");
    assert!(
        polite_row.executed > 0,
        "the polite tenant must keep getting served"
    );
    if polite_row.executed > 0 {
        assert_eq!(polite_row.status, Status::Ok);
        assert_eq!(polite_row.result, "233");
    }
    handle.shutdown();
}

#[test]
fn rate_limited_tenant_gets_typed_refusals_with_retry_advice() {
    let handle = start_with(ServerConfig {
        workers: 2,
        rate_limit: Some(RateLimit {
            rps: 5.0,
            burst: 2.0,
        }),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut limited = 0;
    let mut ok = 0;
    for _ in 0..10 {
        let resp = client
            .call_as(
                "greedy",
                None,
                Mode::Rgt,
                DispatchMode::Threaded,
                None,
                None,
                "val it = 1 + 2",
            )
            .expect("call");
        match resp.status {
            Status::Ok => ok += 1,
            Status::RateLimited => {
                assert!(resp.retry_after_ms > 0, "refusals carry retry advice");
                assert_eq!(resp.worker, u32::MAX, "never reached a worker");
                limited += 1;
            }
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(ok >= 2, "the burst allowance admits the first requests");
    assert!(limited > 0, "a 10-request burst against burst=2 is limited");

    // A different tenant has its own bucket: its first call sails through.
    let resp = client
        .call_as(
            "modest",
            None,
            Mode::Rgt,
            DispatchMode::Threaded,
            None,
            None,
            "val it = 1 + 2",
        )
        .expect("call");
    assert_eq!(resp.status, Status::Ok);

    let (_, rate_limited, ..) = handle.overload_stats();
    assert_eq!(rate_limited as usize, limited);
    handle.shutdown();
}

#[test]
fn deadline_breach_is_typed_and_engine_identical_through_the_server() {
    // The same spinning program under the same wall-clock budget must
    // fail with the same status and the same error text on all four
    // dispatch engines — deadlines surface at the shared safe points,
    // not at engine-specific places.
    let handle = start(2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut outcomes = Vec::new();
    for dispatch in [
        DispatchMode::Match,
        DispatchMode::Threaded,
        DispatchMode::Register,
        DispatchMode::RegisterFused,
    ] {
        let resp = client
            .call_as(
                "deadline-test",
                Some(80),
                Mode::Rgt,
                dispatch,
                None,
                None,
                SPIN,
            )
            .expect("call");
        outcomes.push((dispatch, resp.status, resp.result));
    }
    for (dispatch, status, result) in &outcomes {
        assert_eq!(
            *status,
            Status::DeadlineExceeded,
            "{dispatch:?} must breach the deadline"
        );
        assert_eq!(
            result, &outcomes[0].2,
            "{dispatch:?} error text diverges from {:?}",
            outcomes[0].0
        );
    }
    let (_, _, deadline_exceeded, ..) = handle.overload_stats();
    assert_eq!(deadline_exceeded, 4);
    handle.shutdown();
}

#[test]
fn drain_answers_queued_work_and_drops_no_in_flight_request() {
    use std::net::TcpStream;

    // One worker, a deep queue, and a pile of pipelined slow-ish
    // requests; drain mid-pile. Every request must get exactly one
    // response: the started ones complete `Ok`, the queued ones are
    // answered `Overloaded` — nothing vanishes.
    let handle = start_with(ServerConfig {
        workers: 1,
        queue_cap: 64,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut tx = TcpStream::connect(addr).expect("connect");
    let mut rx = tx.try_clone().expect("clone");
    rx.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    const N: u64 = 24;
    for req_id in 0..N {
        kit_serve::wire::write_request(
            &mut tx,
            &kit_serve::Request {
                req_id,
                mode: Mode::Rgt,
                dispatch: DispatchMode::Threaded,
                fuel: None,
                max_heap_pages: None,
                deadline_ms: None,
                tenant: "drainee".to_string(),
                src: FIB.to_string(),
            },
        )
        .expect("send");
    }
    // Let the worker start chewing, then drain.
    std::thread::sleep(Duration::from_millis(50));
    let report = handle.drain(Duration::from_secs(30));
    assert!(report.drained, "one fib in flight drains well within 30s");

    let mut seen = std::collections::HashMap::new();
    for _ in 0..N {
        let resp = kit_serve::wire::read_response(&mut rx).expect("every request is answered");
        let prev = seen.insert(resp.req_id, resp.status);
        assert_eq!(prev, None, "request answered twice");
    }
    let completed = seen.values().filter(|s| **s == Status::Ok).count();
    let shed = seen.values().filter(|s| **s == Status::Overloaded).count();
    assert_eq!(completed + shed, N as usize);
    assert!(completed >= 1, "the in-flight request completed");
    assert_eq!(
        shed, report.answered_overloaded,
        "the drain's count matches the wire"
    );
    for s in seen.values() {
        assert!(
            matches!(s, Status::Ok | Status::Overloaded),
            "unexpected drain status {s:?}"
        );
    }
}

// ------------------------------------------------------ reader hygiene

#[test]
fn idle_connection_gets_typed_close() {
    let handle = start_with(ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut s = std::net::TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Say nothing; the server must close us with a typed response.
    let resp = kit_serve::wire::read_response(&mut s).expect("typed close");
    assert_eq!(resp.status, Status::Closed);
    assert!(resp.result.contains("idle"));
    handle.shutdown();
}

#[test]
fn slowloris_frame_gets_typed_close_and_mid_frame_eof_is_reaped_silently() {
    use std::io::Write;
    use std::net::{Shutdown, TcpStream};

    let handle = start_with(ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_secs(30),
        frame_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });

    // Slowloris: start a frame, stall. The frame budget must close us
    // with a typed response even though the idle budget is far away.
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&100u32.to_le_bytes()).expect("length prefix");
    s.write_all(&[2u8; 10]).expect("partial payload");
    s.flush().unwrap();
    let resp = kit_serve::wire::read_response(&mut s).expect("typed close");
    assert_eq!(resp.status, Status::Closed);
    assert!(resp.result.contains("stalled"));

    // Mid-frame EOF: promise bytes, die. No response owed; the server
    // must reap the connection without panicking and keep serving.
    let mut dead = TcpStream::connect(handle.addr()).expect("connect");
    dead.write_all(&100u32.to_le_bytes())
        .expect("length prefix");
    dead.write_all(&[2u8; 10]).expect("partial payload");
    dead.flush().unwrap();
    dead.shutdown(Shutdown::Both).expect("die mid-frame");
    drop(dead);

    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(handle.live_workers(), 1, "no worker died to the abuse");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let resp = client
        .call(Mode::Rgt, DispatchMode::Threaded, None, None, "val it = 7")
        .expect("server still serves");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.result, "7");
    handle.shutdown();
}
