//! End-to-end server tests: mixed quota outcomes under concurrency,
//! bit-identical counters vs standalone execution, and tenant isolation
//! (a neighbour breaching its quota must not perturb anyone else).

use kit::{Compiler, DispatchMode, Mode};
use kit_serve::server::{Server, ServerConfig};
use kit_serve::wire::Status;
use kit_serve::{check_against_standalone, run_load, Client, LoadProgram, LoadSpec};

const FIB: &str = "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval it = fib 13";
const BUILD: &str = "fun build 0 = nil | build n = n :: build (n-1)\nval it = length (build 40000)";

fn prog(name: &str, src: &str, fuel: Option<u64>, pages: Option<usize>) -> LoadProgram {
    LoadProgram {
        name: name.to_string(),
        mode: Mode::Rgt,
        dispatch: DispatchMode::Threaded,
        fuel,
        max_heap_pages: pages,
        src: src.to_string(),
    }
}

fn start(workers: usize) -> kit_serve::ServerHandle {
    Server::bind("127.0.0.1:0", ServerConfig { workers })
        .expect("bind")
        .spawn()
}

#[test]
fn mixed_outcomes_under_load_match_standalone() {
    let handle = start(4);
    let mix = vec![
        prog("fib", FIB, None, None),
        prog("fib-fuel", FIB, Some(1_000), None),
        prog("build-quota", BUILD, None, Some(8)),
    ];
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 96,
        sessions: 24,
        conns: 6,
        mix: mix.clone(),
    })
    .expect("load run");

    assert_eq!(report.requests, 96);
    assert!(report.rps > 0.0);
    assert!(report.p99_ms >= report.p50_ms);
    let by_name = |n: &str| {
        report
            .per_program
            .iter()
            .find(|p| p.name == n)
            .unwrap_or_else(|| panic!("missing program {n}"))
    };
    assert_eq!(by_name("fib").status, Status::Ok);
    assert_eq!(by_name("fib").result, "233");
    assert_eq!(by_name("fib-fuel").status, Status::OutOfFuel);
    assert_eq!(by_name("build-quota").status, Status::QuotaExceeded);
    // The load driver already enforced per-program uniformity; pin the
    // absolute values to a standalone run too.
    let rows = check_against_standalone(handle.addr(), &mix).expect("standalone check");
    assert_eq!(rows.len(), 3);

    // All responses came from the worker pool we configured.
    let stats = handle.worker_stats();
    assert_eq!(stats.len(), 4);
    let total: u64 = stats.iter().map(|(requests, _)| requests).sum();
    assert_eq!(total, 96 + 3); // load run + the check's three calls

    handle.shutdown();
}

#[test]
fn quota_breach_is_not_observable_by_concurrent_tenants() {
    // A well-behaved tenant's counters while a noisy neighbour breaches
    // its memory quota must equal the counters of the same program run
    // alone in a fresh process-equivalent (standalone Compiler).
    let handle = start(2);
    let mix = vec![
        prog("victim", FIB, None, None),
        prog("noisy", BUILD, None, Some(8)),
    ];
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 40,
        sessions: 8,
        conns: 4,
        mix,
    })
    .expect("load run");

    let victim = report
        .per_program
        .iter()
        .find(|p| p.name == "victim")
        .expect("victim row");
    let alone = Compiler::new(Mode::Rgt)
        .with_dispatch(DispatchMode::Threaded)
        .run_source(FIB)
        .expect("standalone run");
    assert_eq!(victim.status, Status::Ok);
    assert_eq!(victim.result, alone.result);
    assert_eq!(victim.instructions, alone.instructions);
    assert_eq!(victim.gc_count, alone.stats.gc_count);
    assert_eq!(victim.gc_copied_words, alone.stats.gc_copied_words);
    handle.shutdown();
}

#[test]
fn compile_errors_and_bad_frames_get_typed_statuses() {
    let handle = start(1);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let resp = client
        .call(
            Mode::Rgt,
            DispatchMode::Threaded,
            None,
            None,
            "val it = undefined_name",
        )
        .expect("call");
    assert_eq!(resp.status, Status::CompileError);
    assert!(!resp.result.is_empty());

    // A syntactically valid frame with an unknown mode byte gets a
    // BadRequest response before the connection closes.
    use std::io::Write;
    use std::net::TcpStream;
    let mut raw = TcpStream::connect(handle.addr()).expect("connect raw");
    let mut payload = kit_serve::wire::encode_request(&kit_serve::Request {
        req_id: 9,
        mode: Mode::R,
        dispatch: DispatchMode::Match,
        fuel: None,
        max_heap_pages: None,
        src: "val it = 1".to_string(),
    });
    payload[9] = 250; // clobber the mode byte
    kit_serve::wire::write_frame(&mut raw, &payload).expect("write frame");
    raw.flush().expect("flush");
    let resp = kit_serve::wire::read_response(&mut raw).expect("read response");
    assert_eq!(resp.status, Status::BadRequest);
    handle.shutdown();
}

#[test]
fn program_cache_shares_one_compilation() {
    // Same source, mode and dispatch from many connections: every
    // response must be identical (same Arc'd PreparedProgram) and the
    // server must survive the burst with exactly one cached entry's
    // worth of behavior — counters uniform across all 64 sessions.
    let handle = start(4);
    let mix = vec![prog("fib", FIB, None, None)];
    let report = run_load(&LoadSpec {
        addr: handle.addr(),
        requests: 64,
        sessions: 64,
        conns: 8,
        mix,
    })
    .expect("load run");
    assert_eq!(report.per_program[0].requests, 64);
    assert_eq!(report.per_program[0].status, Status::Ok);
    handle.shutdown();
}
