//! The length-prefixed binary wire protocol (DESIGN.md §6i).
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. Integers inside the payload are
//! little-endian; strings are a `u32` length plus UTF-8 bytes. The
//! protocol is deliberately positional and versioned by a leading byte —
//! a hand-rolled codec keeps the workspace std-only.
//!
//! Requests carry a client-chosen `req_id` which the response echoes:
//! one connection may pipeline many requests, and the worker pool
//! completes them in whatever order scheduling produces.

use kit::{DispatchMode, Mode};
use std::io::{self, Read, Write};

/// Protocol version byte expected at the head of every request.
/// Version 2 (PR 10) added the tenant id and per-request deadline to the
/// request frame, and `retry_after_ms`/`queue_depth` plus the overload
/// statuses (`Overloaded`, `RateLimited`, `DeadlineExceeded`, `Closed`)
/// to the response frame.
pub const VERSION: u8 = 2;

/// Upper bound on a frame payload; a length above this is treated as a
/// malformed frame rather than an allocation request.
pub const MAX_FRAME: u32 = 16 << 20;

/// A program-execution request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed in the response (pipelining).
    pub req_id: u64,
    /// Execution mode (paper §1.2).
    pub mode: Mode,
    /// Dispatch engine to execute with.
    pub dispatch: DispatchMode,
    /// Instruction budget; `None` is unlimited.
    pub fuel: Option<u64>,
    /// Page cap on the materialized heap footprint; `None` is unlimited.
    pub max_heap_pages: Option<usize>,
    /// Wall-clock budget in milliseconds, measured from admission (so
    /// queueing delay counts); `None` defers to the server's default.
    pub deadline_ms: Option<u64>,
    /// Tenant id for rate limiting and fair shedding. Empty means
    /// anonymous: the server falls back to the hashed client address, so
    /// one flooding connection still cannot starve the rest.
    pub tenant: String,
    /// MiniML source text.
    pub src: String,
}

/// Outcome classification of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The program ran to completion; `result` holds the rendered value.
    Ok,
    /// The source did not compile; `result` holds the error.
    CompileError,
    /// An exception escaped; `result` holds the error.
    UncaughtException,
    /// The fuel quota was exhausted.
    OutOfFuel,
    /// The memory quota was breached.
    QuotaExceeded,
    /// The request frame itself was malformed.
    BadRequest,
    /// The request was shed at admission (queue full, or the server is
    /// draining) and was never executed; `retry_after_ms` advises when to
    /// try again.
    Overloaded,
    /// The tenant's token bucket was empty; the request was never
    /// executed. `retry_after_ms` is the time until a token accrues.
    RateLimited,
    /// The wall-clock deadline passed at a safe point mid-execution.
    DeadlineExceeded,
    /// Server-initiated typed close (idle timeout or a frame that
    /// stalled mid-read); no further responses follow on this connection.
    Closed,
}

impl Status {
    /// True for outcomes produced by actually executing the program —
    /// these are deterministic and must be bit-identical across
    /// responses; shed/limited/deadline outcomes are load- and
    /// clock-dependent and are tallied instead of compared.
    pub fn is_deterministic(self) -> bool {
        matches!(
            self,
            Status::Ok
                | Status::CompileError
                | Status::UncaughtException
                | Status::OutOfFuel
                | Status::QuotaExceeded
        )
    }

    fn to_byte(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::CompileError => 1,
            Status::UncaughtException => 2,
            Status::OutOfFuel => 3,
            Status::QuotaExceeded => 4,
            Status::BadRequest => 5,
            Status::Overloaded => 6,
            Status::RateLimited => 7,
            Status::DeadlineExceeded => 8,
            Status::Closed => 9,
        }
    }

    fn from_byte(b: u8) -> io::Result<Status> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::CompileError,
            2 => Status::UncaughtException,
            3 => Status::OutOfFuel,
            4 => Status::QuotaExceeded,
            5 => Status::BadRequest,
            6 => Status::Overloaded,
            7 => Status::RateLimited,
            8 => Status::DeadlineExceeded,
            9 => Status::Closed,
            other => return Err(bad(format!("unknown status byte {other}"))),
        })
    }
}

/// The server's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's `req_id`.
    pub req_id: u64,
    /// Outcome classification.
    pub status: Status,
    /// Id of the worker that executed the request (for per-worker
    /// aggregation in the load generator); `u32::MAX` when the request
    /// never reached a worker (shed, rate-limited, bad frame).
    pub worker: u32,
    /// Backoff advice in milliseconds for `Overloaded`/`RateLimited`
    /// responses (0 otherwise).
    pub retry_after_ms: u32,
    /// Depth of the admission queue when this request was admitted (or
    /// shed) — the load driver aggregates these into `queue_depth_p99`.
    pub queue_depth: u32,
    /// Instructions executed (0 unless `Ok`).
    pub instructions: u64,
    /// Collections performed (0 unless `Ok`).
    pub gc_count: u64,
    /// Words copied by the collector (0 unless `Ok`).
    pub gc_copied_words: u64,
    /// Wall-clock nanoseconds spent collecting (0 unless `Ok`).
    pub gc_time_ns: u64,
    /// Peak memory footprint in bytes (0 unless `Ok`).
    pub peak_bytes: u64,
    /// Rendered result value (`Ok`) or error text (otherwise).
    pub result: String,
    /// Everything the program printed.
    pub output: String,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Wire encoding of a [`Mode`] (also the server's cache-key byte).
pub fn mode_byte(m: Mode) -> u8 {
    match m {
        Mode::R => 0,
        Mode::Rt => 1,
        Mode::Gt => 2,
        Mode::Rgt => 3,
        Mode::Baseline => 4,
    }
}

fn mode_of(b: u8) -> io::Result<Mode> {
    Ok(match b {
        0 => Mode::R,
        1 => Mode::Rt,
        2 => Mode::Gt,
        3 => Mode::Rgt,
        4 => Mode::Baseline,
        other => return Err(bad(format!("unknown mode byte {other}"))),
    })
}

/// Wire encoding of a [`DispatchMode`] (also the server's cache-key byte).
pub fn dispatch_byte(d: DispatchMode) -> u8 {
    match d {
        DispatchMode::Match => 0,
        DispatchMode::Threaded => 1,
        DispatchMode::Register => 2,
        DispatchMode::RegisterFused => 3,
    }
}

fn dispatch_of(b: u8) -> io::Result<DispatchMode> {
    Ok(match b {
        0 => DispatchMode::Match,
        1 => DispatchMode::Threaded,
        2 => DispatchMode::Register,
        3 => DispatchMode::RegisterFused,
        other => return Err(bad(format!("unknown dispatch byte {other}"))),
    })
}

// ------------------------------------------------------- payload cursors

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated frame".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| bad(format!("invalid UTF-8: {e}")))
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Reads one frame payload (length prefix + bytes).
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(51 + req.tenant.len() + req.src.len());
    out.push(VERSION);
    out.extend_from_slice(&req.req_id.to_le_bytes());
    out.push(mode_byte(req.mode));
    out.push(dispatch_byte(req.dispatch));
    out.extend_from_slice(&req.fuel.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&(req.max_heap_pages.unwrap_or(0) as u64).to_le_bytes());
    out.extend_from_slice(&req.deadline_ms.unwrap_or(0).to_le_bytes());
    put_str(&mut out, &req.tenant);
    put_str(&mut out, &req.src);
    out
}

/// Decodes a request frame payload.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let mut c = Cur {
        buf: payload,
        pos: 0,
    };
    let version = c.u8()?;
    if version != VERSION {
        return Err(bad(format!(
            "protocol version {version}, expected {VERSION}"
        )));
    }
    let req_id = c.u64()?;
    let mode = mode_of(c.u8()?)?;
    let dispatch = dispatch_of(c.u8()?)?;
    let fuel = match c.u64()? {
        0 => None,
        n => Some(n),
    };
    let max_heap_pages = match c.u64()? {
        0 => None,
        n => Some(n as usize),
    };
    let deadline_ms = match c.u64()? {
        0 => None,
        n => Some(n),
    };
    let tenant = c.str()?;
    let src = c.str()?;
    c.done()?;
    Ok(Request {
        req_id,
        mode,
        dispatch,
        fuel,
        max_heap_pages,
        deadline_ms,
        tenant,
        src,
    })
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(69 + resp.result.len() + resp.output.len());
    out.extend_from_slice(&resp.req_id.to_le_bytes());
    out.push(resp.status.to_byte());
    out.extend_from_slice(&resp.worker.to_le_bytes());
    out.extend_from_slice(&resp.retry_after_ms.to_le_bytes());
    out.extend_from_slice(&resp.queue_depth.to_le_bytes());
    out.extend_from_slice(&resp.instructions.to_le_bytes());
    out.extend_from_slice(&resp.gc_count.to_le_bytes());
    out.extend_from_slice(&resp.gc_copied_words.to_le_bytes());
    out.extend_from_slice(&resp.gc_time_ns.to_le_bytes());
    out.extend_from_slice(&resp.peak_bytes.to_le_bytes());
    put_str(&mut out, &resp.result);
    put_str(&mut out, &resp.output);
    out
}

/// Decodes a response frame payload.
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let mut c = Cur {
        buf: payload,
        pos: 0,
    };
    let req_id = c.u64()?;
    let status = Status::from_byte(c.u8()?)?;
    let worker = c.u32()?;
    let retry_after_ms = c.u32()?;
    let queue_depth = c.u32()?;
    let instructions = c.u64()?;
    let gc_count = c.u64()?;
    let gc_copied_words = c.u64()?;
    let gc_time_ns = c.u64()?;
    let peak_bytes = c.u64()?;
    let result = c.str()?;
    let output = c.str()?;
    c.done()?;
    Ok(Response {
        req_id,
        status,
        worker,
        retry_after_ms,
        queue_depth,
        instructions,
        gc_count,
        gc_copied_words,
        gc_time_ns,
        peak_bytes,
        result,
        output,
    })
}

/// Writes a request as one frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Reads a request frame.
pub fn read_request(r: &mut impl Read) -> io::Result<Request> {
    decode_request(&read_frame(r)?)
}

/// Writes a response as one frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Reads a response frame.
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    decode_response(&read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            req_id: 77,
            mode: Mode::Rgt,
            dispatch: DispatchMode::RegisterFused,
            fuel: Some(1_000_000),
            max_heap_pages: Some(64),
            deadline_ms: Some(250),
            tenant: "acme".to_string(),
            src: "val it = 1 + 2".to_string(),
        };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let back = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            req_id: 99,
            status: Status::QuotaExceeded,
            worker: 3,
            retry_after_ms: 40,
            queue_depth: 17,
            instructions: 123,
            gc_count: 4,
            gc_copied_words: 5,
            gc_time_ns: 6,
            peak_bytes: 7,
            result: "memory quota exceeded (9 pages > cap of 8)".to_string(),
            output: "partial\n".to_string(),
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let back = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn malformed_frames_are_invalid_data() {
        // Truncated payload.
        let req = encode_request(&Request {
            req_id: 1,
            mode: Mode::R,
            dispatch: DispatchMode::Match,
            fuel: None,
            max_heap_pages: None,
            deadline_ms: None,
            tenant: String::new(),
            src: "val it = 0".to_string(),
        });
        let e = decode_request(&req[..req.len() - 1]).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        // Unknown mode byte.
        let mut payload = req.clone();
        payload[9] = 200;
        let e = decode_request(&payload).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        // Oversized frame length.
        let mut framed = Vec::new();
        framed.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = read_frame(&mut framed.as_slice()).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }
}
