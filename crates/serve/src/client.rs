//! A minimal blocking client for the wire protocol — enough for tests,
//! the verify smoke leg, and one-off calls. The load generator drives
//! connections directly (it needs pipelining; see [`crate::load`]).

use crate::wire::{self, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection, used call-by-call (no pipelining).
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            next_id: 1,
        })
    }

    /// Sends `req` and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        wire::write_request(&mut self.stream, req)?;
        wire::read_response(&mut self.stream)
    }

    /// Sends a request built from parts, assigning the next request id.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors.
    pub fn call(
        &mut self,
        mode: kit::Mode,
        dispatch: kit::DispatchMode,
        fuel: Option<u64>,
        max_heap_pages: Option<usize>,
        src: &str,
    ) -> io::Result<Response> {
        self.call_as("", None, mode, dispatch, fuel, max_heap_pages, src)
    }

    /// Like [`call`], with an explicit tenant id and wall-clock budget
    /// (milliseconds from admission).
    ///
    /// [`call`]: Client::call
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors.
    #[allow(clippy::too_many_arguments)]
    pub fn call_as(
        &mut self,
        tenant: &str,
        deadline_ms: Option<u64>,
        mode: kit::Mode,
        dispatch: kit::DispatchMode,
        fuel: Option<u64>,
        max_heap_pages: Option<usize>,
        src: &str,
    ) -> io::Result<Response> {
        let req_id = self.next_id;
        self.next_id += 1;
        self.send(&Request {
            req_id,
            mode,
            dispatch,
            fuel,
            max_heap_pages,
            deadline_ms: deadline_ms.filter(|&ms| ms > 0),
            tenant: tenant.to_string(),
            src: src.to_string(),
        })
    }
}
