//! The `kit-serve` binary: bind, announce the address, serve until
//! killed.
//!
//! ```text
//! kit-serve [--addr HOST:PORT] [--workers N]
//!           [--queue-cap N] [--shed-policy newest|tenant-share]
//!           [--rate RPS[:BURST]] [--deadline-ms N]
//! ```
//!
//! Prints `listening on HOST:PORT` on stdout once ready (port 0 in
//! `--addr` picks an ephemeral port; scripts parse this line).

use kit_serve::server::{RateLimit, Server, ServerConfig, ShedPolicy};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: kit-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--shed-policy newest|tenant-share] [--rate RPS[:BURST]] [--deadline-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = value(),
            "--workers" => {
                config.workers = value().parse().unwrap_or_else(|_| usage());
            }
            "--queue-cap" => {
                config.queue_cap = value().parse().unwrap_or_else(|_| usage());
            }
            "--shed-policy" => {
                config.shed_policy = match value().as_str() {
                    "newest" => ShedPolicy::RejectNewest,
                    "tenant-share" => ShedPolicy::TenantShare,
                    _ => usage(),
                };
            }
            "--rate" => {
                let v = value();
                let (rps, burst) = match v.split_once(':') {
                    Some((r, b)) => (r.parse(), b.parse()),
                    None => (v.parse(), v.parse()),
                };
                match (rps, burst) {
                    (Ok(rps), Ok(burst)) => config.rate_limit = Some(RateLimit { rps, burst }),
                    _ => usage(),
                }
            }
            "--deadline-ms" => {
                config.default_deadline_ms = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kit-serve: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut handle = server.spawn();
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().expect("flush stdout");
    handle.join_acceptor();
}
