//! The `kit-serve` binary: bind, announce the address, serve until
//! killed.
//!
//! ```text
//! kit-serve [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Prints `listening on HOST:PORT` on stdout once ready (port 0 in
//! `--addr` picks an ephemeral port; scripts parse this line).

use kit_serve::server::{Server, ServerConfig};
use std::io::Write;

fn usage() -> ! {
    eprintln!("usage: kit-serve [--addr HOST:PORT] [--workers N]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                config.workers = n;
            }
            _ => usage(),
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kit-serve: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut handle = server.spawn();
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().expect("flush stdout");
    handle.join_acceptor();
}
