//! The load driver: opens `conns` TCP connections to a running server,
//! keeps `sessions` requests in flight across them (pipelined — each
//! connection has a sender and a receiver thread), and reports
//! requests/sec, p50/p99 latency, per-program counter aggregates, and
//! per-worker collector time. Shared by the `loadgen` binary and the
//! `bench-summary` serve section so both report identical numbers.
//!
//! Overload awareness (PR 10): responses split into *deterministic*
//! outcomes ([`Status::is_deterministic`] — produced by actually running
//! the program, demanded bit-identical per program) and *load-dependent*
//! outcomes (`Overloaded`, `RateLimited`, `DeadlineExceeded`), which are
//! tallied per program and in aggregate instead of compared. Every
//! request still receives exactly one typed response — shedding never
//! silently drops — so the response count always matches the request
//! count.

use crate::wire::{self, Request, Response, Status};
use kit::{Compiler, DispatchMode, Mode};
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// One program in the load mix.
#[derive(Debug, Clone)]
pub struct LoadProgram {
    /// Display name (benchmark name, possibly with quota annotations).
    pub name: String,
    /// Execution mode.
    pub mode: Mode,
    /// Dispatch engine.
    pub dispatch: DispatchMode,
    /// Per-request fuel quota.
    pub fuel: Option<u64>,
    /// Per-request memory quota in pages.
    pub max_heap_pages: Option<usize>,
    /// Per-request wall-clock budget in milliseconds (from admission).
    pub deadline_ms: Option<u64>,
    /// Tenant id sent with each request (empty = anonymous).
    pub tenant: String,
    /// MiniML source.
    pub src: String,
}

impl LoadProgram {
    /// A quota-free program under the given name — the common case for
    /// tests and generated mixes.
    pub fn plain(name: &str, mode: Mode, dispatch: DispatchMode, src: &str) -> LoadProgram {
        LoadProgram {
            name: name.to_string(),
            mode,
            dispatch,
            fuel: None,
            max_heap_pages: None,
            deadline_ms: None,
            tenant: String::new(),
            src: src.to_string(),
        }
    }
}

/// What to run and how hard to push.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address.
    pub addr: SocketAddr,
    /// Total requests to issue (assigned round-robin over the mix).
    pub requests: usize,
    /// Concurrent in-flight sessions across all connections.
    pub sessions: usize,
    /// TCP connections to spread the sessions over.
    pub conns: usize,
    /// The program mix.
    pub mix: Vec<LoadProgram>,
}

/// Aggregate counters for one mix program, with uniformity enforced over
/// the *deterministic* responses: every executed response for the
/// program must agree on status, instructions, gc_count and
/// gc_copied_words (the determinism claim of DESIGN.md §6i). Shed,
/// rate-limited and deadline-breached responses are load-dependent and
/// are tallied, not compared.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// The program's display name.
    pub name: String,
    /// Responses received (all statuses).
    pub requests: usize,
    /// Uniform status of the deterministic responses; when *no* response
    /// was deterministic (e.g. a fully rate-limited hog), the status of
    /// the first response received.
    pub status: Status,
    /// Deterministic responses (those counted under `status` when it is
    /// deterministic).
    pub executed: usize,
    /// Responses shed at admission with `Overloaded`.
    pub shed: usize,
    /// Responses refused with `RateLimited`.
    pub rate_limited: usize,
    /// Responses that breached their wall-clock deadline.
    pub deadline_exceeded: usize,
    /// Uniform instruction total (0 for non-`Ok` outcomes).
    pub instructions: u64,
    /// Uniform collection count.
    pub gc_count: u64,
    /// Uniform copied-word count.
    pub gc_copied_words: u64,
    /// Summed collector time across the program's requests.
    pub gc_time_ns: u64,
    /// Maximum peak footprint over the program's requests.
    pub peak_bytes: u64,
    /// 99th-percentile latency over this program's responses,
    /// milliseconds (the per-tenant fairness probe: a polite tenant's
    /// p99 must hold while a hog floods).
    pub p99_ms: f64,
    /// Uniform result/error text of the deterministic responses.
    pub result: String,
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Responses received (== requests issued on success).
    pub requests: usize,
    /// Wall-clock time from first send to last receive.
    pub wall: Duration,
    /// Requests per second.
    pub rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Requests shed at admission (`Overloaded`), all programs.
    pub shed: usize,
    /// Requests refused with `RateLimited`, all programs.
    pub rate_limited: usize,
    /// Requests that breached their deadline, all programs.
    pub deadline_exceeded: usize,
    /// 99th percentile of the admission-queue depth observed across all
    /// responses (each response reports the depth at its admission).
    pub queue_depth_p99: u32,
    /// Per-program aggregates, mix order.
    pub per_program: Vec<ProgramReport>,
    /// Collector nanoseconds summed per worker id.
    pub per_worker_gc_ns: BTreeMap<u32, u64>,
}

/// Per-connection receiver tallies, merged after the join.
#[derive(Default)]
struct ConnTally {
    latencies: Vec<Duration>,
    queue_depths: Vec<u32>,
    /// program index → accumulated responses
    programs: HashMap<usize, ProgAcc>,
    worker_gc_ns: HashMap<u32, u64>,
    errors: Vec<String>,
}

#[derive(Default)]
struct ProgAcc {
    requests: usize,
    executed: usize,
    shed: usize,
    rate_limited: usize,
    deadline_exceeded: usize,
    gc_time_ns: u64,
    peak_bytes: u64,
    latencies: Vec<Duration>,
    /// First deterministic response (uniformity reference).
    first: Option<Response>,
    /// First response of any status (fallback when nothing executed).
    first_any: Option<Response>,
}

impl ProgAcc {
    fn absorb_status(&mut self, status: Status) {
        match status {
            Status::Overloaded => self.shed += 1,
            Status::RateLimited => self.rate_limited += 1,
            Status::DeadlineExceeded => self.deadline_exceeded += 1,
            _ => {}
        }
    }
}

struct Pending {
    /// req_id → (program index, send instant)
    inflight: HashMap<u64, (usize, Instant)>,
    outstanding: usize,
    /// Set by the receiver on failure so a capacity-blocked sender exits
    /// instead of waiting forever.
    aborted: bool,
}

/// Runs the load and aggregates the report.
///
/// # Errors
///
/// Returns a message on socket failure or on a per-program counter
/// mismatch (two *deterministic* responses for the same program
/// disagreeing on status, instructions or GC counters).
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport, String> {
    if spec.mix.is_empty() || spec.requests == 0 {
        return Err("empty load: need at least one mix program and one request".to_string());
    }
    let conns = spec.conns.clamp(1, spec.requests);
    let sessions = spec.sessions.max(1);
    // Split the in-flight budget over the connections, first conns
    // rounding up so the total matches.
    let budget = |c: usize| {
        let base = sessions / conns;
        let share = if c < sessions % conns { base + 1 } else { base };
        share.max(1)
    };

    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(conns);
    for c in 0..conns {
        let addr = spec.addr;
        let mix: Vec<LoadProgram> = spec.mix.clone();
        let total = spec.requests;
        let nconns = conns;
        let cap = budget(c);
        handles.push(thread::spawn(move || -> Result<ConnTally, String> {
            drive_conn(addr, &mix, total, nconns, c, cap)
        }));
    }

    let mut tally = ConnTally::default();
    for h in handles {
        let t = h
            .join()
            .map_err(|_| "load connection thread panicked".to_string())??;
        tally.latencies.extend(t.latencies);
        tally.queue_depths.extend(t.queue_depths);
        tally.errors.extend(t.errors);
        for (w, ns) in t.worker_gc_ns {
            *tally.worker_gc_ns.entry(w).or_insert(0) += ns;
        }
        for (p, acc) in t.programs {
            merge_prog(&mut tally.programs, &mut tally.errors, p, acc);
        }
    }
    let wall = t0.elapsed();

    if let Some(e) = tally.errors.first() {
        return Err(e.clone());
    }

    let mut lat = tally.latencies;
    lat.sort_unstable();
    let n = lat.len();
    if n != spec.requests {
        return Err(format!("expected {} responses, got {n}", spec.requests));
    }
    let pct = |p: f64| lat[(((n as f64) * p).ceil() as usize).clamp(1, n) - 1];
    let mean = lat.iter().sum::<Duration>() / n as u32;

    let mut depths = tally.queue_depths;
    depths.sort_unstable();
    let queue_depth_p99 = depths
        .get((((depths.len() as f64) * 0.99).ceil() as usize).clamp(1, depths.len().max(1)) - 1)
        .copied()
        .unwrap_or(0);

    let (mut shed, mut rate_limited, mut deadline_exceeded) = (0, 0, 0);
    let mut per_program = Vec::with_capacity(spec.mix.len());
    for (i, prog) in spec.mix.iter().enumerate() {
        let mut acc = tally
            .programs
            .remove(&i)
            .ok_or_else(|| format!("program {} received no responses", prog.name))?;
        shed += acc.shed;
        rate_limited += acc.rate_limited;
        deadline_exceeded += acc.deadline_exceeded;
        acc.latencies.sort_unstable();
        let pn = acc.latencies.len();
        let p99 = acc.latencies[(((pn as f64) * 0.99).ceil() as usize).clamp(1, pn) - 1];
        let reference = acc
            .first
            .as_ref()
            .or(acc.first_any.as_ref())
            .expect("a counted program has at least one response");
        per_program.push(ProgramReport {
            name: prog.name.clone(),
            requests: acc.requests,
            status: reference.status,
            executed: acc.executed,
            shed: acc.shed,
            rate_limited: acc.rate_limited,
            deadline_exceeded: acc.deadline_exceeded,
            instructions: reference.instructions,
            gc_count: reference.gc_count,
            gc_copied_words: reference.gc_copied_words,
            gc_time_ns: acc.gc_time_ns,
            peak_bytes: acc.peak_bytes,
            p99_ms: p99.as_secs_f64() * 1e3,
            result: reference.result.clone(),
        });
    }

    Ok(LoadReport {
        requests: n,
        wall,
        rps: n as f64 / wall.as_secs_f64(),
        p50_ms: pct(0.50).as_secs_f64() * 1e3,
        p99_ms: pct(0.99).as_secs_f64() * 1e3,
        mean_ms: mean.as_secs_f64() * 1e3,
        shed,
        rate_limited,
        deadline_exceeded,
        queue_depth_p99,
        per_program,
        per_worker_gc_ns: tally.worker_gc_ns.into_iter().collect(),
    })
}

/// Drives one connection: a sender thread pushes this connection's share
/// of the request stream (request `i` goes to connection `i % nconns`,
/// program `i % mix.len()`), blocking while `cap` requests are in
/// flight; the receiver (this thread) tallies responses.
fn drive_conn(
    addr: SocketAddr,
    mix: &[LoadProgram],
    total: usize,
    nconns: usize,
    conn: usize,
    cap: usize,
) -> Result<ConnTally, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut rx = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    // A stuck server (or a sender that died mid-stream) must not hang
    // the run forever; a timed-out read surfaces as a recv error.
    rx.set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let pending = Arc::new((
        Mutex::new(Pending {
            inflight: HashMap::new(),
            outstanding: 0,
            aborted: false,
        }),
        Condvar::new(),
    ));

    let my_ids: Vec<usize> = (conn..total).step_by(nconns).collect();
    let expected = my_ids.len();

    let sender = {
        let pending = Arc::clone(&pending);
        let mix = mix.to_vec();
        let mut tx = stream;
        thread::spawn(move || -> Result<(), String> {
            for i in my_ids {
                let prog = &mix[i % mix.len()];
                let req = Request {
                    req_id: i as u64,
                    mode: prog.mode,
                    dispatch: prog.dispatch,
                    fuel: prog.fuel,
                    max_heap_pages: prog.max_heap_pages,
                    deadline_ms: prog.deadline_ms,
                    tenant: prog.tenant.clone(),
                    src: prog.src.clone(),
                };
                let (lock, cv) = &*pending;
                let mut p = lock.lock().expect("pending lock");
                while p.outstanding >= cap && !p.aborted {
                    p = cv.wait(p).expect("pending wait");
                }
                if p.aborted {
                    return Err("receiver aborted".to_string());
                }
                p.inflight
                    .insert(req.req_id, (i % mix.len(), Instant::now()));
                p.outstanding += 1;
                drop(p);
                if let Err(e) = wire::write_request(&mut tx, &req) {
                    return Err(format!("send: {e}"));
                }
            }
            Ok(())
        })
    };

    let mut tally = ConnTally::default();
    for _ in 0..expected {
        let resp = match wire::read_response(&mut rx) {
            Ok(r) => r,
            Err(e) => {
                tally.errors.push(format!("recv: {e}"));
                break;
            }
        };
        let (lock, cv) = &*pending;
        let mut p = lock.lock().expect("pending lock");
        let Some((prog_idx, sent)) = p.inflight.remove(&resp.req_id) else {
            tally
                .errors
                .push(format!("unexpected req_id {}", resp.req_id));
            break;
        };
        p.outstanding -= 1;
        drop(p);
        cv.notify_one();
        let latency = sent.elapsed();
        tally.latencies.push(latency);
        tally.queue_depths.push(resp.queue_depth);
        // Shed/limited responses carry `worker == u32::MAX` (no worker
        // touched them); keep the per-worker books to real workers.
        if resp.worker != u32::MAX {
            *tally.worker_gc_ns.entry(resp.worker).or_insert(0) += resp.gc_time_ns;
        }
        let mut acc = ProgAcc {
            requests: 1,
            gc_time_ns: resp.gc_time_ns,
            peak_bytes: resp.peak_bytes,
            latencies: vec![latency],
            ..ProgAcc::default()
        };
        acc.absorb_status(resp.status);
        if resp.status.is_deterministic() {
            acc.executed = 1;
            acc.first = Some(resp);
        } else {
            acc.first_any = Some(resp);
        }
        merge_prog(&mut tally.programs, &mut tally.errors, prog_idx, acc);
    }

    if !tally.errors.is_empty() {
        let (lock, cv) = &*pending;
        lock.lock().expect("pending lock").aborted = true;
        cv.notify_all();
    }
    match sender.join() {
        Ok(Ok(())) => {}
        // Suppress the sender's secondary error when the receiver
        // already recorded the root cause.
        Ok(Err(e)) if tally.errors.is_empty() => tally.errors.push(e),
        Ok(Err(_)) => {}
        Err(_) => tally.errors.push("sender thread panicked".to_string()),
    }
    Ok(tally)
}

/// Folds `acc` into the per-program map, recording an error if its
/// deterministic counters disagree with what the program produced
/// elsewhere. Load-dependent outcomes never participate in the
/// comparison — only in the tallies.
fn merge_prog(
    programs: &mut HashMap<usize, ProgAcc>,
    errors: &mut Vec<String>,
    idx: usize,
    acc: ProgAcc,
) {
    match programs.get_mut(&idx) {
        None => {
            programs.insert(idx, acc);
        }
        Some(have) => {
            if let (Some(a), Some(b)) = (&have.first, &acc.first) {
                if (
                    a.status,
                    a.instructions,
                    a.gc_count,
                    a.gc_copied_words,
                    &a.result,
                ) != (
                    b.status,
                    b.instructions,
                    b.gc_count,
                    b.gc_copied_words,
                    &b.result,
                ) {
                    errors.push(format!(
                        "program #{idx} responses disagree: \
                         ({:?}, {} instr, {} gcs, {} copied, {:?}) vs \
                         ({:?}, {} instr, {} gcs, {} copied, {:?})",
                        a.status,
                        a.instructions,
                        a.gc_count,
                        a.gc_copied_words,
                        a.result,
                        b.status,
                        b.instructions,
                        b.gc_count,
                        b.gc_copied_words,
                        b.result,
                    ));
                }
            }
            if have.first.is_none() {
                have.first = acc.first;
            }
            if have.first_any.is_none() {
                have.first_any = acc.first_any;
            }
            have.requests += acc.requests;
            have.executed += acc.executed;
            have.shed += acc.shed;
            have.rate_limited += acc.rate_limited;
            have.deadline_exceeded += acc.deadline_exceeded;
            have.gc_time_ns += acc.gc_time_ns;
            have.peak_bytes = have.peak_bytes.max(acc.peak_bytes);
            have.latencies.extend(acc.latencies);
        }
    }
}

/// One row of a server-vs-standalone check.
#[derive(Debug)]
pub struct CheckRow {
    /// The program's display name.
    pub name: String,
    /// Human-readable outcome summary (shared by both sides on success).
    pub summary: String,
}

/// Runs each mix program once through the server and once standalone on
/// an identically configured [`Compiler`], and demands bit-identical
/// observables: status, result/error text, instruction total, GC count
/// and copied words. Deadlines are deliberately *not* forwarded — a
/// wall-clock breach is load-dependent, so the check compares the
/// deterministic quotas only.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn check_against_standalone(
    addr: SocketAddr,
    mix: &[LoadProgram],
) -> Result<Vec<CheckRow>, String> {
    let mut client =
        crate::client::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut rows = Vec::with_capacity(mix.len());
    for prog in mix {
        let served = client
            .call(
                prog.mode,
                prog.dispatch,
                prog.fuel,
                prog.max_heap_pages,
                &prog.src,
            )
            .map_err(|e| format!("{}: call failed: {e}", prog.name))?;

        let mut compiler = Compiler::new(prog.mode).with_dispatch(prog.dispatch);
        if let Some(fuel) = prog.fuel {
            compiler = compiler.with_fuel(fuel);
        }
        if let Some(pages) = prog.max_heap_pages {
            compiler = compiler.with_max_heap_pages(pages);
        }
        let summary = match compiler.run_source(&prog.src) {
            Ok(out) => {
                if served.status != Status::Ok {
                    return Err(format!(
                        "{}: server says {:?} ({}), standalone succeeded",
                        prog.name, served.status, served.result
                    ));
                }
                let server_side = (
                    served.result.as_str(),
                    served.instructions,
                    served.gc_count,
                    served.gc_copied_words,
                );
                let local_side = (
                    out.result.as_str(),
                    out.instructions,
                    out.stats.gc_count,
                    out.stats.gc_copied_words,
                );
                if server_side != local_side {
                    return Err(format!(
                        "{}: server {server_side:?} != standalone {local_side:?}",
                        prog.name
                    ));
                }
                format!(
                    "ok: result={} instructions={} gc_count={} gc_copied_words={}",
                    out.result, out.instructions, out.stats.gc_count, out.stats.gc_copied_words
                )
            }
            Err(e) => {
                if served.status == Status::Ok || served.result != e.to_string() {
                    return Err(format!(
                        "{}: server says {:?} ({:?}), standalone failed with {:?}",
                        prog.name,
                        served.status,
                        served.result,
                        e.to_string()
                    ));
                }
                format!("error (both sides): {e}")
            }
        };
        rows.push(CheckRow {
            name: prog.name.clone(),
            summary,
        });
    }
    Ok(rows)
}
