//! The multi-tenant execution server (DESIGN.md §6i).
//!
//! One process hosts thousands of concurrent program executions: an
//! acceptor thread takes TCP connections, a reader thread per connection
//! decodes request frames into a shared job queue, and a fixed pool of
//! worker threads executes them. Each request runs on its own `Vm`/`Rt`
//! under its own fuel and memory quota; compiled programs are shared
//! immutably across workers through an `Arc<PreparedProgram>` cache keyed
//! by `(mode, dispatch, source)`, so a program submitted by many tenants
//! is compiled and linked once.

use crate::wire::{self, Request, Response, Status};
use kit::{Compiler, Error, PreparedProgram, VmError};
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Size of the worker pool (defaults to the machine's parallelism).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: thread::available_parallelism().map_or(4, usize::from),
        }
    }
}

/// Per-worker execution counters (relaxed; read for reporting only).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Requests this worker completed.
    pub requests: AtomicU64,
    /// Total collector nanoseconds across this worker's requests.
    pub gc_time_ns: AtomicU64,
}

/// One queued request plus the (shared, mutex-guarded) stream its
/// response must be written to.
struct Job {
    req: Request,
    out: Arc<Mutex<TcpStream>>,
}

type CacheKey = (u8, u8, String);

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Compile-once cache: successful compilations only, so a tenant
    /// retrying a bad program does not pin garbage in the cache.
    cache: Mutex<HashMap<CacheKey, Arc<PreparedProgram>>>,
    workers: Vec<WorkerStats>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the acceptor and the worker pool; returns a handle for
    /// shutdown and stats.
    pub fn spawn(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("bound listener has an address");
        let workers = self.config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(HashMap::new()),
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
        });

        let mut pool = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = Arc::clone(&shared);
            pool.push(
                thread::Builder::new()
                    .name(format!("kit-serve-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id as u32))
                    .expect("spawn worker"),
            );
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("kit-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&self.listener, &shared))
                .expect("spawn acceptor")
        };

        ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            pool,
        }
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    pool: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of per-worker counters: `(requests, gc_time_ns)`.
    pub fn worker_stats(&self) -> Vec<(u64, u64)> {
        self.shared
            .workers
            .iter()
            .map(|w| {
                (
                    w.requests.load(Ordering::Relaxed),
                    w.gc_time_ns.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Blocks until the acceptor exits (i.e. until [`shutdown`] is
    /// called from another thread, or the listener fails).
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn join_acceptor(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops the server: the acceptor takes no new connections and the
    /// worker pool drains. Reader threads of still-open client
    /// connections exit when their peers disconnect.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection, and the workers' condvar wait with a broadcast.
        let _ = TcpStream::connect(self.addr);
        self.shared.available.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.pool.drain(..) {
            let _ = h.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("kit-serve-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

/// Reads frames off one connection and enqueues them. A malformed frame
/// gets a `BadRequest` response and closes the connection (framing is
/// lost); a clean disconnect just ends the loop.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let out = Arc::new(Mutex::new(stream));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let req = match read_request_or_report(&mut reader, &out) {
            Some(req) => req,
            None => break,
        };
        let mut q = shared.queue.lock().expect("queue lock");
        q.push_back(Job {
            req,
            out: Arc::clone(&out),
        });
        drop(q);
        shared.available.notify_one();
    }
}

fn read_request_or_report(reader: &mut TcpStream, out: &Arc<Mutex<TcpStream>>) -> Option<Request> {
    match wire::read_frame(reader).and_then(|p| wire::decode_request(&p)) {
        Ok(req) => Some(req),
        Err(e) if e.kind() == ErrorKind::InvalidData => {
            // The frame decoded badly; the req_id may be unrecoverable,
            // so answer with id 0 and drop the connection.
            let resp = error_response(0, Status::BadRequest, u32::MAX, format!("bad request: {e}"));
            let mut w = out.lock().expect("stream lock");
            let _ = wire::write_response(&mut *w, &resp);
            let _ = w.flush();
            None
        }
        Err(_) => None, // disconnect
    }
}

fn worker_loop(shared: &Arc<Shared>, id: u32) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.available.wait(q).expect("queue wait");
            }
        };
        let resp = execute(shared, id, &job.req);
        let stats = &shared.workers[id as usize];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats
            .gc_time_ns
            .fetch_add(resp.gc_time_ns, Ordering::Relaxed);
        let mut w = job.out.lock().expect("stream lock");
        let _ = wire::write_response(&mut *w, &resp);
        let _ = w.flush();
    }
}

fn error_response(req_id: u64, status: Status, worker: u32, result: String) -> Response {
    Response {
        req_id,
        status,
        worker,
        instructions: 0,
        gc_count: 0,
        gc_copied_words: 0,
        gc_time_ns: 0,
        peak_bytes: 0,
        result,
        output: String::new(),
    }
}

/// Looks the program up in the compile-once cache (compiling outside the
/// cache lock on a miss) and runs it on a fresh `Vm`/`Rt` under the
/// request's quotas.
fn execute(shared: &Shared, worker: u32, req: &Request) -> Response {
    let run = catch_unwind(AssertUnwindSafe(|| execute_inner(shared, worker, req)));
    match run {
        Ok(resp) => resp,
        Err(_) => error_response(
            req.req_id,
            Status::UncaughtException,
            worker,
            "internal error: execution panicked".to_string(),
        ),
    }
}

fn execute_inner(shared: &Shared, worker: u32, req: &Request) -> Response {
    let mut compiler = Compiler::new(req.mode).with_dispatch(req.dispatch);
    if let Some(fuel) = req.fuel {
        compiler = compiler.with_fuel(fuel);
    }
    if let Some(pages) = req.max_heap_pages {
        compiler = compiler.with_max_heap_pages(pages);
    }

    let key: CacheKey = (
        wire::mode_byte(req.mode),
        wire::dispatch_byte(req.dispatch),
        req.src.clone(),
    );
    let cached = shared.cache.lock().expect("cache lock").get(&key).cloned();
    let prep = match cached {
        Some(prep) => prep,
        None => match compiler.prepare_source(&req.src) {
            Ok(prep) => {
                let prep = Arc::new(prep);
                // Two workers may race to compile the same program; the
                // first insert wins so everyone shares one copy.
                let mut cache = shared.cache.lock().expect("cache lock");
                Arc::clone(cache.entry(key).or_insert(prep))
            }
            Err(e) => {
                return error_response(req.req_id, Status::CompileError, worker, e.to_string())
            }
        },
    };

    match compiler.run_prepared(&prep) {
        Ok(out) => Response {
            req_id: req.req_id,
            status: Status::Ok,
            worker,
            instructions: out.instructions,
            gc_count: out.stats.gc_count,
            gc_copied_words: out.stats.gc_copied_words,
            gc_time_ns: out.stats.gc_time_ns,
            peak_bytes: out.stats.peak_bytes as u64,
            result: out.result,
            output: out.output,
        },
        Err(e) => {
            let status = match &e {
                Error::Run(VmError::OutOfFuel) => Status::OutOfFuel,
                Error::Run(VmError::QuotaExceeded { .. }) => Status::QuotaExceeded,
                Error::Run(VmError::UncaughtException { .. }) => Status::UncaughtException,
                Error::Compile(_) => Status::CompileError,
            };
            error_response(req.req_id, status, worker, e.to_string())
        }
    }
}
