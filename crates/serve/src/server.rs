//! The multi-tenant execution server (DESIGN.md §6i, §6j).
//!
//! One process hosts thousands of concurrent program executions: an
//! acceptor thread takes TCP connections, a reader thread per connection
//! decodes request frames into a shared job queue, and a fixed pool of
//! worker threads executes them. Each request runs on its own `Vm`/`Rt`
//! under its own fuel, memory and wall-clock quota; compiled programs are
//! shared immutably across workers through an `Arc<PreparedProgram>`
//! cache keyed by `(mode, dispatch, source)`, so a program submitted by
//! many tenants is compiled and linked once.
//!
//! The overload-survival layer (PR 10) sheds at *admission*, where a
//! refusal costs a queue-lock acquisition and one response frame, never
//! mid-execution:
//!
//! * the job queue is bounded ([`ServerConfig::queue_cap`]); a full
//!   queue sheds per [`ShedPolicy`] with a typed [`Status::Overloaded`]
//!   carrying `retry_after_ms`;
//! * each tenant (explicit id, or hashed client IP) owns a token bucket
//!   ([`ServerConfig::rate_limit`]); an empty bucket answers
//!   [`Status::RateLimited`] without touching the queue;
//! * every admitted request can carry a wall-clock deadline anchored at
//!   admission (so queueing delay counts), enforced by the VM at `GcCheck`
//!   safe points as a typed [`Status::DeadlineExceeded`];
//! * connections are defended: frames must complete within
//!   [`ServerConfig::frame_timeout`] (slowloris), idle connections get a
//!   typed [`Status::Closed`] response, response writes time out
//!   ([`ServerConfig::write_timeout`]) so a never-draining peer cannot
//!   pin a worker, and a peer that dies mid-frame is reaped silently;
//! * [`ServerHandle::drain`] stops admission, answers every
//!   queued-but-unstarted request with `Overloaded`, and waits (bounded)
//!   for in-flight requests to finish — zero in-flight drops.

use crate::wire::{self, Request, Response, Status};
use kit::{Compiler, Error, PreparedProgram, VmError};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// What to do when a request arrives and the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Shed the arriving request (cheapest; FIFO fairness for admitted
    /// work).
    #[default]
    RejectNewest,
    /// Shed by tenant share: if the arriving tenant already holds the
    /// largest share of the queue it is shed; otherwise the *newest
    /// queued* request of the largest-share tenant is answered
    /// `Overloaded` and the newcomer takes its place. A hog floods
    /// itself out of the queue; polite tenants keep getting admitted.
    TenantShare,
}

/// Per-tenant token-bucket rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained requests per second per tenant.
    pub rps: f64,
    /// Burst capacity in requests (bucket size; buckets start full).
    pub burst: f64,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Size of the worker pool (defaults to the machine's parallelism).
    pub workers: usize,
    /// Admission-queue bound: requests beyond this depth are shed with a
    /// typed `Overloaded` response instead of silently degrading p99 for
    /// everyone already admitted.
    pub queue_cap: usize,
    /// Full-queue shedding policy.
    pub shed_policy: ShedPolicy,
    /// Per-tenant token bucket; `None` disables rate limiting.
    pub rate_limit: Option<RateLimit>,
    /// Wall-clock deadline applied to requests that do not carry their
    /// own `deadline_ms`; also what bounds how long a drain can take.
    /// `None` imposes no default.
    pub default_deadline_ms: Option<u64>,
    /// A connection with no frame activity for this long is answered
    /// with a typed `Closed` response and dropped.
    pub idle_timeout: Duration,
    /// Once a frame's first byte has arrived the whole frame must arrive
    /// within this budget, or the connection is closed (`Closed`
    /// response) — a slowloris writer trickling one byte per idle window
    /// cannot hold a reader forever.
    pub frame_timeout: Duration,
    /// Budget for writing one response; a stalled reader (never-draining
    /// socket) fails the write, marks the connection dead and frees the
    /// worker.
    pub write_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight requests
    /// before giving up on the remaining workers.
    pub drain_timeout: Duration,
    /// Bound on the compile cache: once this many distinct programs are
    /// cached, further misses compile per-request instead of inserting,
    /// so a tenant flooding unique sources cannot grow memory without
    /// bound.
    pub compile_cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: thread::available_parallelism().map_or(4, usize::from),
            queue_cap: 1024,
            shed_policy: ShedPolicy::default(),
            rate_limit: None,
            default_deadline_ms: None,
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            compile_cache_cap: 1024,
        }
    }
}

/// Per-worker execution counters (relaxed; read for reporting only).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Requests this worker completed.
    pub requests: AtomicU64,
    /// Total collector nanoseconds across this worker's requests.
    pub gc_time_ns: AtomicU64,
}

/// Server-wide overload counters (relaxed; read for reporting only).
#[derive(Debug, Default)]
pub struct OverloadStats {
    /// Requests shed at admission with `Overloaded` (full queue, queue
    /// eviction, or drain).
    pub shed: AtomicU64,
    /// Requests refused with `RateLimited`.
    pub rate_limited: AtomicU64,
    /// Requests that breached their wall-clock deadline mid-execution.
    pub deadline_exceeded: AtomicU64,
    /// Connections closed for idling or stalling mid-frame.
    pub closed: AtomicU64,
    /// High-watermark of the admission queue depth.
    pub queue_depth_max: AtomicUsize,
}

/// The per-connection writer: one lock so responses never interleave
/// bytes, one sticky `dead` flag so a failed write (stalled reader, gone
/// peer) stops all further writes instead of poisoning workers.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

/// Ignore lock poisoning: a panicking writer must not take the other
/// workers down with a poisoned per-connection lock.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl ConnWriter {
    /// Writes one response frame; on failure the connection is marked
    /// dead and shut down so the reader side unblocks too.
    fn write(&self, resp: &Response) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut w = relock(self.stream.lock());
        let r = wire::write_response(&mut *w, resp).and_then(|()| w.flush());
        if r.is_err() {
            self.dead.store(true, Ordering::Relaxed);
            let _ = w.shutdown(Shutdown::Both);
        }
    }
}

/// One queued request plus where its response goes.
struct Job {
    req: Request,
    /// Tenant key (explicit id hashed, or hashed client IP).
    tenant: u64,
    /// Wall-clock deadline anchored at admission; `None` is unbounded.
    deadline: Option<Instant>,
    /// Queue depth observed at admission (reported in the response).
    depth: u32,
    out: Arc<ConnWriter>,
}

/// The admission queue plus the per-tenant share books the
/// [`ShedPolicy::TenantShare`] policy needs.
#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    /// tenant key → queued (not yet started) requests.
    shares: HashMap<u64, usize>,
}

impl Queue {
    fn push(&mut self, job: Job) {
        *self.shares.entry(job.tenant).or_insert(0) += 1;
        self.jobs.push_back(job);
    }

    fn pop(&mut self) -> Option<Job> {
        let job = self.jobs.pop_front()?;
        self.unshare(job.tenant);
        Some(job)
    }

    fn unshare(&mut self, tenant: u64) {
        if let Some(n) = self.shares.get_mut(&tenant) {
            *n -= 1;
            if *n == 0 {
                self.shares.remove(&tenant);
            }
        }
    }

    /// Removes the newest queued job of the tenant holding the largest
    /// queue share (ties: larger tenant key, so the choice is
    /// deterministic).
    fn evict_largest_share(&mut self) -> Option<Job> {
        let (&tenant, _) = self.shares.iter().max_by_key(|(&tenant, &n)| (n, tenant))?;
        let idx = self.jobs.iter().rposition(|j| j.tenant == tenant)?;
        let job = self.jobs.remove(idx)?;
        self.unshare(tenant);
        Some(job)
    }
}

type CacheKey = (u8, u8, String);

struct Shared {
    config: ServerConfig,
    queue: Mutex<Queue>,
    available: Condvar,
    /// Set by drain/shutdown: stop admitting and stop starting queued
    /// work. Workers finish their in-flight request and exit.
    shutdown: AtomicBool,
    /// Compile-once cache: successful compilations only, so a tenant
    /// retrying a bad program does not pin garbage in the cache.
    cache: Mutex<HashMap<CacheKey, Arc<PreparedProgram>>>,
    workers: Vec<WorkerStats>,
    overload: OverloadStats,
    /// Token buckets, keyed like queue shares.
    buckets: Mutex<HashMap<u64, Bucket>>,
    /// Gauges for the leak probes: live worker threads, open reader
    /// connections, in-flight (started, unfinished) requests.
    live_workers: AtomicUsize,
    open_conns: AtomicUsize,
    in_flight: AtomicUsize,
    /// Workers that have exited, for the bounded drain join.
    exited: Mutex<usize>,
    exited_cv: Condvar,
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the acceptor and the worker pool; returns a handle for
    /// shutdown and stats.
    pub fn spawn(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("bound listener has an address");
        let workers = self.config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(HashMap::new()),
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
            overload: OverloadStats::default(),
            buckets: Mutex::new(HashMap::new()),
            live_workers: AtomicUsize::new(0),
            open_conns: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            exited: Mutex::new(0),
            exited_cv: Condvar::new(),
            config: self.config,
        });

        let mut pool = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = Arc::clone(&shared);
            shared.live_workers.fetch_add(1, Ordering::SeqCst);
            pool.push(
                thread::Builder::new()
                    .name(format!("kit-serve-worker-{id}"))
                    .spawn(move || {
                        worker_loop(&shared, id as u32);
                        shared.live_workers.fetch_sub(1, Ordering::SeqCst);
                        let mut exited = relock(shared.exited.lock());
                        *exited += 1;
                        shared.exited_cv.notify_all();
                    })
                    .expect("spawn worker"),
            );
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("kit-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&self.listener, &shared))
                .expect("spawn acceptor")
        };

        ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            pool,
        }
    }
}

/// What a [`ServerHandle::drain`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Queued-but-unstarted requests answered `Overloaded`.
    pub answered_overloaded: usize,
    /// Whether every worker finished its in-flight request and exited
    /// within the drain timeout.
    pub drained: bool,
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    pool: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of per-worker counters: `(requests, gc_time_ns)`.
    pub fn worker_stats(&self) -> Vec<(u64, u64)> {
        self.shared
            .workers
            .iter()
            .map(|w| {
                (
                    w.requests.load(Ordering::Relaxed),
                    w.gc_time_ns.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Snapshot of the overload counters:
    /// `(shed, rate_limited, deadline_exceeded, closed, queue_depth_max)`.
    pub fn overload_stats(&self) -> (u64, u64, u64, u64, usize) {
        let o = &self.shared.overload;
        (
            o.shed.load(Ordering::Relaxed),
            o.rate_limited.load(Ordering::Relaxed),
            o.deadline_exceeded.load(Ordering::Relaxed),
            o.closed.load(Ordering::Relaxed),
            o.queue_depth_max.load(Ordering::Relaxed),
        )
    }

    /// Live worker threads (the chaos leg's leak probe: must equal the
    /// configured pool size for the server's whole life).
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::SeqCst)
    }

    /// Open reader connections (gauge; settles to 0 when all peers are
    /// gone).
    pub fn open_connections(&self) -> usize {
        self.shared.open_conns.load(Ordering::SeqCst)
    }

    /// Entries in the compile cache (the chaos leg's memory probe:
    /// malformed/shed traffic must not grow it).
    pub fn cache_size(&self) -> usize {
        relock(self.shared.cache.lock()).len()
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        relock(self.shared.queue.lock()).jobs.len()
    }

    /// Blocks until the acceptor exits (i.e. until [`shutdown`] is
    /// called from another thread, or the listener fails).
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn join_acceptor(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Graceful drain: stop accepting connections and starting queued
    /// work, answer every queued-but-unstarted request with a typed
    /// `Overloaded`, and wait up to `timeout` for the in-flight requests
    /// to finish. In-flight requests are never dropped — they either
    /// complete within the timeout (`drained: true`) or keep running on
    /// detached workers (`drained: false`; a configured
    /// [`ServerConfig::default_deadline_ms`] bounds how long that can
    /// last).
    pub fn drain(mut self, timeout: Duration) -> DrainReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection, and the workers' condvar wait with a broadcast.
        let _ = TcpStream::connect(self.addr);
        self.shared.available.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }

        // Workers saw the flag before popping, so everything still
        // queued is ours to answer.
        let unstarted: Vec<Job> = {
            let mut q = relock(self.shared.queue.lock());
            let jobs = std::mem::take(&mut q.jobs);
            q.shares.clear();
            jobs.into()
        };
        let answered_overloaded = unstarted.len();
        for job in unstarted {
            self.shared.overload.shed.fetch_add(1, Ordering::Relaxed);
            job.out.write(&shed_response(
                job.req.req_id,
                Status::Overloaded,
                drain_retry_ms(&self.shared.config),
                job.depth,
                "server draining; request was not started".to_string(),
            ));
        }

        // Bounded join: workers exit after finishing their in-flight
        // request.
        let deadline = Instant::now() + timeout;
        let mut exited = relock(self.shared.exited.lock());
        let drained = loop {
            if *exited == self.pool.len() {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            let (g, _) = self
                .shared
                .exited_cv
                .wait_timeout(exited, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            exited = g;
        };
        drop(exited);
        if drained {
            for h in self.pool.drain(..) {
                let _ = h.join();
            }
        }
        DrainReport {
            answered_overloaded,
            drained,
        }
    }

    /// Stops the server via a graceful [`drain`] bounded by
    /// [`ServerConfig::drain_timeout`].
    ///
    /// [`drain`]: ServerHandle::drain
    pub fn shutdown(self) -> DrainReport {
        let timeout = self.shared.config.drain_timeout;
        self.drain(timeout)
    }
}

/// Backoff advice when shedding: roughly the time the current queue
/// takes to drain at ~1ms/request across the pool, clamped to something
/// a client can act on.
fn retry_after_ms(depth: usize, workers: usize) -> u32 {
    (depth / workers.max(1)).clamp(10, 2000) as u32
}

/// Backoff advice while draining: long enough that a retry lands after
/// a typical restart.
fn drain_retry_ms(config: &ServerConfig) -> u32 {
    (config.drain_timeout.as_millis() as u32).clamp(100, 10_000)
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("kit-serve-conn".to_string())
            .spawn(move || {
                shared.open_conns.fetch_add(1, Ordering::SeqCst);
                connection_loop(stream, &shared);
                shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            });
    }
}

/// One frame-read attempt with the connection-hygiene timeouts applied.
enum FrameRead {
    Frame(Vec<u8>),
    /// No frame started within the idle window.
    Idle,
    /// A frame started but did not complete within the frame budget
    /// (slowloris or a stalled writer).
    Stalled,
    /// Peer is gone (clean close or death mid-frame) — reap silently.
    Disconnect,
    /// Framing is broken (oversized length, decode failure upstream).
    Malformed(io::Error),
    /// The server is shutting down.
    ShuttingDown,
}

/// Reads `buf` fully, returning how the read ended. The socket carries a
/// short read timeout (set in [`connection_loop`]) so this loop can
/// observe idle/stall budgets and the shutdown flag between chunks.
/// `started` is the first-byte instant of the current frame, shared
/// between the prefix and body reads so the budget covers the whole
/// frame.
fn read_full(
    reader: &mut TcpStream,
    shared: &Shared,
    buf: &mut [u8],
    started: &mut Option<Instant>,
    opened: Instant,
) -> Result<(), FrameRead> {
    let mut at = 0;
    while at < buf.len() {
        match reader.read(&mut buf[at..]) {
            Ok(0) => return Err(FrameRead::Disconnect),
            Ok(n) => {
                started.get_or_insert_with(Instant::now);
                at += n;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Err(FrameRead::ShuttingDown);
                }
                match *started {
                    None if opened.elapsed() >= shared.config.idle_timeout => {
                        return Err(FrameRead::Idle)
                    }
                    Some(t0) if t0.elapsed() >= shared.config.frame_timeout => {
                        return Err(FrameRead::Stalled)
                    }
                    _ => {}
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(FrameRead::Disconnect),
        }
    }
    Ok(())
}

/// Reads one frame under the idle/stall budgets.
fn read_frame_guarded(reader: &mut TcpStream, shared: &Shared, opened: Instant) -> FrameRead {
    let mut started = None;
    let mut len = [0u8; 4];
    if let Err(end) = read_full(reader, shared, &mut len, &mut started, opened) {
        return end;
    }
    let len = u32::from_le_bytes(len);
    if len > wire::MAX_FRAME {
        return FrameRead::Malformed(io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    if let Err(end) = read_full(reader, shared, &mut buf, &mut started, opened) {
        return end;
    }
    FrameRead::Frame(buf)
}

/// Reads frames off one connection, admits them (shedding at admission
/// when the queue is full or the tenant is over its rate), and reaps the
/// connection on idle/stall/disconnect. A malformed frame gets a
/// `BadRequest` response and closes the connection (framing is lost).
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let peer = stream.peer_addr().ok();
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Short tick so idle/stall budgets and shutdown are observed
    // promptly; the real budgets are enforced in `read_full`.
    let tick = shared
        .config
        .idle_timeout
        .min(shared.config.frame_timeout)
        .min(Duration::from_millis(100));
    let _ = reader.set_read_timeout(Some(tick.max(Duration::from_millis(1))));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let out = Arc::new(ConnWriter {
        stream: Mutex::new(stream),
        dead: AtomicBool::new(false),
    });
    let mut opened = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || out.dead.load(Ordering::Relaxed) {
            break;
        }
        let req = match read_frame_guarded(&mut reader, shared, opened) {
            FrameRead::Frame(payload) => match wire::decode_request(&payload) {
                Ok(req) => req,
                Err(e) => {
                    // The frame decoded badly; the req_id may be
                    // unrecoverable, so answer with id 0 and drop the
                    // connection.
                    out.write(&error_response(
                        0,
                        Status::BadRequest,
                        u32::MAX,
                        format!("bad request: {e}"),
                    ));
                    break;
                }
            },
            FrameRead::Malformed(e) => {
                out.write(&error_response(
                    0,
                    Status::BadRequest,
                    u32::MAX,
                    format!("bad request: {e}"),
                ));
                break;
            }
            FrameRead::Idle => {
                shared.overload.closed.fetch_add(1, Ordering::Relaxed);
                out.write(&error_response(
                    0,
                    Status::Closed,
                    u32::MAX,
                    "idle connection closed".to_string(),
                ));
                break;
            }
            FrameRead::Stalled => {
                shared.overload.closed.fetch_add(1, Ordering::Relaxed);
                out.write(&error_response(
                    0,
                    Status::Closed,
                    u32::MAX,
                    "frame stalled mid-read".to_string(),
                ));
                break;
            }
            FrameRead::Disconnect | FrameRead::ShuttingDown => break,
        };
        admit(shared, req, peer, &out);
        opened = Instant::now(); // restart the idle window per frame
    }
    // Dropping `out` (once queued jobs finish) closes the stream.
    let _ = reader.shutdown(Shutdown::Read);
}

/// Tenant key: the explicit request tenant id, or the client IP (not
/// port: a flooder opening many connections is still one tenant).
fn tenant_key(req: &Request, peer: Option<SocketAddr>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    if req.tenant.is_empty() {
        match peer {
            Some(addr) => addr.ip().hash(&mut h),
            None => 0u8.hash(&mut h),
        }
    } else {
        req.tenant.hash(&mut h);
    }
    h.finish()
}

/// Admission: rate limit first (cheapest, no shared queue contention),
/// then the bounded queue with the configured shed policy. Every refusal
/// is a typed response — nothing is silently dropped.
fn admit(shared: &Arc<Shared>, req: Request, peer: Option<SocketAddr>, out: &Arc<ConnWriter>) {
    let tenant = tenant_key(&req, peer);
    let workers = shared.workers.len();

    if shared.shutdown.load(Ordering::SeqCst) {
        shared.overload.shed.fetch_add(1, Ordering::Relaxed);
        out.write(&shed_response(
            req.req_id,
            Status::Overloaded,
            drain_retry_ms(&shared.config),
            0,
            "server draining".to_string(),
        ));
        return;
    }

    if let Some(limit) = shared.config.rate_limit {
        if let Some(wait_ms) = take_token(shared, tenant, limit) {
            shared.overload.rate_limited.fetch_add(1, Ordering::Relaxed);
            out.write(&shed_response(
                req.req_id,
                Status::RateLimited,
                wait_ms,
                0,
                format!("tenant over {} req/s", limit.rps),
            ));
            return;
        }
    }

    let admitted = Instant::now();
    let deadline_ms = req.deadline_ms.or(shared.config.default_deadline_ms);
    let deadline = deadline_ms.map(|ms| admitted + Duration::from_millis(ms));

    let mut q = relock(shared.queue.lock());
    let depth = q.jobs.len();
    shared
        .overload
        .queue_depth_max
        .fetch_max(depth + 1, Ordering::Relaxed);
    let mut evicted = None;
    if depth >= shared.config.queue_cap {
        let shed_incoming = match shared.config.shed_policy {
            ShedPolicy::RejectNewest => true,
            ShedPolicy::TenantShare => {
                let max_share = q.shares.values().copied().max().unwrap_or(0);
                let my_share = q.shares.get(&tenant).copied().unwrap_or(0);
                // The newcomer is shed only if it already holds (at
                // least) the largest share; otherwise the hog loses its
                // newest queued request to make room.
                if my_share + 1 > max_share {
                    true
                } else {
                    evicted = q.evict_largest_share();
                    evicted.is_none()
                }
            }
        };
        if shed_incoming {
            drop(q);
            shared.overload.shed.fetch_add(1, Ordering::Relaxed);
            out.write(&shed_response(
                req.req_id,
                Status::Overloaded,
                retry_after_ms(depth, workers),
                depth as u32,
                format!("admission queue full ({depth} queued)"),
            ));
            return;
        }
    }
    let depth_at_admission = q.jobs.len() as u32;
    q.push(Job {
        req,
        tenant,
        deadline,
        depth: depth_at_admission,
        out: Arc::clone(out),
    });
    drop(q);
    shared.available.notify_one();
    if let Some(victim) = evicted {
        shared.overload.shed.fetch_add(1, Ordering::Relaxed);
        victim.out.write(&shed_response(
            victim.req.req_id,
            Status::Overloaded,
            retry_after_ms(depth, workers),
            depth as u32,
            "evicted by tenant-share shedding (largest queue share)".to_string(),
        ));
    }
}

/// Takes one token from the tenant's bucket; returns the backoff advice
/// in milliseconds if the bucket is empty.
fn take_token(shared: &Shared, tenant: u64, limit: RateLimit) -> Option<u32> {
    let rps = limit.rps.max(1e-6);
    let burst = limit.burst.max(1.0);
    let now = Instant::now();
    let mut buckets = relock(shared.buckets.lock());
    let bucket = buckets.entry(tenant).or_insert(Bucket {
        tokens: burst,
        last: now,
    });
    bucket.tokens =
        (bucket.tokens + now.duration_since(bucket.last).as_secs_f64() * rps).min(burst);
    bucket.last = now;
    if bucket.tokens >= 1.0 {
        bucket.tokens -= 1.0;
        None
    } else {
        Some(
            (((1.0 - bucket.tokens) / rps) * 1e3)
                .ceil()
                .clamp(1.0, 60_000.0) as u32,
        )
    }
}

fn worker_loop(shared: &Arc<Shared>, id: u32) {
    loop {
        let job = {
            let mut q = relock(shared.queue.lock());
            loop {
                // Checked before popping: a drain answers everything
                // still queued, so a worker must not race it for jobs.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = q.pop() {
                    // Claimed under the queue lock so the drain's
                    // "queued vs in-flight" split is exact.
                    shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    break job;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let resp = execute(shared, id, &job);
        let stats = &shared.workers[id as usize];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats
            .gc_time_ns
            .fetch_add(resp.gc_time_ns, Ordering::Relaxed);
        if resp.status == Status::DeadlineExceeded {
            shared
                .overload
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
        }
        job.out.write(&resp);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn error_response(req_id: u64, status: Status, worker: u32, result: String) -> Response {
    Response {
        req_id,
        status,
        worker,
        retry_after_ms: 0,
        queue_depth: 0,
        instructions: 0,
        gc_count: 0,
        gc_copied_words: 0,
        gc_time_ns: 0,
        peak_bytes: 0,
        result,
        output: String::new(),
    }
}

fn shed_response(
    req_id: u64,
    status: Status,
    retry_after_ms: u32,
    queue_depth: u32,
    result: String,
) -> Response {
    Response {
        retry_after_ms,
        queue_depth,
        ..error_response(req_id, status, u32::MAX, result)
    }
}

/// Looks the program up in the compile-once cache (compiling outside the
/// cache lock on a miss) and runs it on a fresh `Vm`/`Rt` under the
/// request's quotas and deadline.
fn execute(shared: &Shared, worker: u32, job: &Job) -> Response {
    let run = catch_unwind(AssertUnwindSafe(|| execute_inner(shared, worker, job)));
    match run {
        Ok(resp) => resp,
        Err(_) => error_response(
            job.req.req_id,
            Status::UncaughtException,
            worker,
            "internal error: execution panicked".to_string(),
        ),
    }
}

fn execute_inner(shared: &Shared, worker: u32, job: &Job) -> Response {
    let req = &job.req;
    // A request whose deadline passed while it sat in the queue is
    // answered without compiling or running anything — the VM would
    // fail at its first safe point anyway; this is the same typed
    // outcome minus the wasted work.
    if let Some(deadline) = job.deadline {
        if Instant::now() >= deadline {
            let mut resp = error_response(
                req.req_id,
                Status::DeadlineExceeded,
                worker,
                "wall-clock deadline exceeded".to_string(),
            );
            resp.queue_depth = job.depth;
            return resp;
        }
    }

    let mut compiler = Compiler::new(req.mode).with_dispatch(req.dispatch);
    if let Some(fuel) = req.fuel {
        compiler = compiler.with_fuel(fuel);
    }
    if let Some(pages) = req.max_heap_pages {
        compiler = compiler.with_max_heap_pages(pages);
    }
    if let Some(deadline) = job.deadline {
        compiler = compiler.with_deadline_at(deadline);
    }

    let key: CacheKey = (
        wire::mode_byte(req.mode),
        wire::dispatch_byte(req.dispatch),
        req.src.clone(),
    );
    let cached = relock(shared.cache.lock()).get(&key).cloned();
    let prep = match cached {
        Some(prep) => prep,
        None => match compiler.prepare_source(&req.src) {
            Ok(prep) => {
                let prep = Arc::new(prep);
                // Two workers may race to compile the same program; the
                // first insert wins so everyone shares one copy. A full
                // cache is left alone (bounded memory) — the request
                // still runs on its private copy.
                let mut cache = relock(shared.cache.lock());
                if cache.len() >= shared.config.compile_cache_cap && !cache.contains_key(&key) {
                    drop(cache);
                    prep
                } else {
                    Arc::clone(cache.entry(key).or_insert(prep))
                }
            }
            Err(e) => {
                return error_response(req.req_id, Status::CompileError, worker, e.to_string())
            }
        },
    };

    let mut resp = match compiler.run_prepared(&prep) {
        Ok(out) => Response {
            req_id: req.req_id,
            status: Status::Ok,
            worker,
            retry_after_ms: 0,
            queue_depth: 0,
            instructions: out.instructions,
            gc_count: out.stats.gc_count,
            gc_copied_words: out.stats.gc_copied_words,
            gc_time_ns: out.stats.gc_time_ns,
            peak_bytes: out.stats.peak_bytes as u64,
            result: out.result,
            output: out.output,
        },
        Err(e) => {
            let status = match &e {
                Error::Run(VmError::OutOfFuel) => Status::OutOfFuel,
                Error::Run(VmError::QuotaExceeded { .. }) => Status::QuotaExceeded,
                Error::Run(VmError::DeadlineExceeded { .. }) => Status::DeadlineExceeded,
                Error::Run(VmError::UncaughtException { .. }) => Status::UncaughtException,
                Error::Compile(_) => Status::CompileError,
            };
            error_response(req.req_id, status, worker, e.to_string())
        }
    };
    resp.queue_depth = job.depth;
    resp
}
