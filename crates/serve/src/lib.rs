//! Multi-tenant VM service: thousands of concurrent MiniML program
//! executions in one process (DESIGN.md §6i).
//!
//! The crate has four layers:
//!
//! * [`wire`] — the length-prefixed binary request/response protocol;
//! * [`server`] — acceptor, per-connection readers, the shared job
//!   queue, the fixed worker pool, and the compile-once program cache
//!   (`Arc<PreparedProgram>` keyed by mode, dispatch and source);
//! * [`client`] — a minimal blocking client for tests and smoke runs;
//! * [`load`] — the load driver reporting requests/sec, p50/p99 latency
//!   and per-worker collector time (used by the `loadgen` binary and
//!   `bench-summary --serve`).
//!
//! Isolation story: every request executes on a fresh `Vm`/`Rt` under
//! its own fuel, memory and wall-clock quota; only immutable compiled
//! artifacts are shared between tenants. Counters (instruction totals,
//! GC counts, copied words) are bit-identical to a standalone
//! single-threaded run of the same program — enforced by
//! [`load::check_against_standalone`] and the verify smoke leg.
//!
//! Overload story (DESIGN.md §6j): admission is bounded and sheds with
//! typed `Overloaded` responses, tenants are rate-limited by token
//! bucket (`RateLimited`), deadlines surface as engine-identical
//! `DeadlineExceeded` at the VM's safe points, drains answer queued
//! work instead of dropping it, and misbehaving connections (slowloris,
//! stalled readers, mid-frame deaths) are reaped on typed budgets.

pub mod client;
pub mod load;
pub mod server;
pub mod wire;

pub use client::Client;
pub use load::{check_against_standalone, run_load, LoadProgram, LoadReport, LoadSpec};
pub use server::{DrainReport, RateLimit, Server, ServerConfig, ServerHandle, ShedPolicy};
pub use wire::{Request, Response, Status};
