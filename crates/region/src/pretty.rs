//! Pretty printer for RegionExp (`--dump-regions` style output and golden
//! tests).

use crate::rexp::{Mult, RExp, RProgram, RegVar};
use kit_lambda::exp::VarTable;
use std::fmt::Write as _;

/// Renders a RegionExp program, including its global regions.
pub fn program_to_string(p: &RProgram) -> String {
    let mut out = String::new();
    let globals: Vec<String> = p.globals.iter().map(|(r, m)| reg_str(*r, *m)).collect();
    let _ = writeln!(out, "globals [{}]", globals.join(", "));
    let mut pr = Printer {
        vars: &p.vars,
        out: &mut out,
        indent: 0,
    };
    pr.exp(&p.body);
    out
}

fn reg_str(r: RegVar, m: Mult) -> String {
    match m {
        Mult::Finite => format!("r{}:1", r.0),
        Mult::Infinite => format!("r{}:inf", r.0),
    }
}

/// Renders one expression.
pub fn exp_to_string(e: &RExp, vars: &VarTable) -> String {
    let mut out = String::new();
    let mut pr = Printer {
        vars,
        out: &mut out,
        indent: 0,
    };
    pr.exp(e);
    out
}

struct Printer<'a> {
    vars: &'a VarTable,
    out: &'a mut String,
    indent: usize,
}

impl Printer<'_> {
    fn nl(&mut self) {
        let _ = write!(self.out, "\n{}", "  ".repeat(self.indent));
    }

    fn exp(&mut self, e: &RExp) {
        match e {
            RExp::Var(v) => {
                let _ = write!(self.out, "{}_{}", self.vars.name(*v), v.0);
            }
            RExp::FixVar { var, rargs, at } => {
                let rs: Vec<String> = rargs.iter().map(|r| format!("r{}", r.0)).collect();
                let _ = write!(
                    self.out,
                    "{}_{}[{}] at r{}",
                    self.vars.name(*var),
                    var.0,
                    rs.join(","),
                    at.0
                );
            }
            RExp::Int(n) => {
                let _ = write!(self.out, "{n}");
            }
            RExp::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            RExp::Unit => self.out.push_str("()"),
            RExp::Str(s) => {
                let _ = write!(self.out, "{s:?}");
            }
            RExp::Real(x, p) => {
                let _ = write!(self.out, "{x} at r{}", p.0);
            }
            RExp::Prim(p, args, at) => {
                let _ = write!(self.out, "{p:?}(");
                self.list(args);
                self.out.push(')');
                if let Some(r) = at {
                    let _ = write!(self.out, " at r{}", r.0);
                }
            }
            RExp::Record(es, p) => {
                self.out.push('(');
                self.list(es);
                let _ = write!(self.out, ") at r{}", p.0);
            }
            RExp::Select(i, e) => {
                let _ = write!(self.out, "#{i} ");
                self.exp(e);
            }
            RExp::Con {
                tycon,
                con,
                arg,
                at,
            } => {
                let _ = write!(self.out, "C{}#{}", tycon.0, con.0);
                if let Some(a) = arg {
                    self.out.push('(');
                    self.exp(a);
                    self.out.push(')');
                }
                if let Some(r) = at {
                    let _ = write!(self.out, " at r{}", r.0);
                }
            }
            RExp::DeCon { scrut, .. } => {
                self.out.push_str("decon ");
                self.exp(scrut);
            }
            RExp::SwitchCon {
                scrut,
                arms,
                default,
                ..
            } => {
                self.out.push_str("case ");
                self.exp(scrut);
                self.indent += 1;
                for (c, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| #{} => ", c.0);
                    self.exp(a);
                }
                if let Some(d) = default {
                    self.nl();
                    self.out.push_str("| _ => ");
                    self.exp(d);
                }
                self.indent -= 1;
            }
            RExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                self.out.push_str("caseint ");
                self.exp(scrut);
                self.indent += 1;
                for (k, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| {k} => ");
                    self.exp(a);
                }
                self.nl();
                self.out.push_str("| _ => ");
                self.exp(default);
                self.indent -= 1;
            }
            RExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                self.out.push_str("casestr ");
                self.exp(scrut);
                self.indent += 1;
                for (k, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| {k:?} => ");
                    self.exp(a);
                }
                self.nl();
                self.out.push_str("| _ => ");
                self.exp(default);
                self.indent -= 1;
            }
            RExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                self.out.push_str("caseexn ");
                self.exp(scrut);
                self.indent += 1;
                for (k, a) in arms {
                    self.nl();
                    let _ = write!(self.out, "| exn#{} => ", k.0);
                    self.exp(a);
                }
                self.nl();
                self.out.push_str("| _ => ");
                self.exp(default);
                self.indent -= 1;
            }
            RExp::If(c, t, f) => {
                self.out.push_str("if ");
                self.exp(c);
                self.out.push_str(" then ");
                self.exp(t);
                self.out.push_str(" else ");
                self.exp(f);
            }
            RExp::Fn { params, body, at } => {
                self.out.push_str("(fn (");
                for (i, v) in params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    let _ = write!(self.out, "{}_{}", self.vars.name(*v), v.0);
                }
                self.out.push_str(") => ");
                self.exp(body);
                let _ = write!(self.out, ") at r{}", at.0);
            }
            RExp::App {
                callee,
                rargs,
                args,
            } => {
                self.out.push('[');
                self.exp(callee);
                self.out.push(']');
                if !rargs.is_empty() {
                    let rs: Vec<String> = rargs.iter().map(|r| format!("r{}", r.0)).collect();
                    let _ = write!(self.out, "[{}]", rs.join(","));
                }
                self.out.push('(');
                self.list(args);
                self.out.push(')');
            }
            RExp::Let { var, rhs, body } => {
                let _ = write!(self.out, "let {}_{} = ", self.vars.name(*var), var.0);
                self.exp(rhs);
                self.nl();
                self.out.push_str("in ");
                self.exp(body);
            }
            RExp::Fix { funs, body, at } => {
                for (i, f) in funs.iter().enumerate() {
                    self.out.push_str(if i == 0 { "fix " } else { "and " });
                    let _ = write!(self.out, "{}_{}", self.vars.name(f.var), f.var.0);
                    let rs: Vec<String> = f.formals.iter().map(|r| format!("r{}", r.0)).collect();
                    let _ = write!(self.out, "[{}]", rs.join(","));
                    self.out.push('(');
                    for (j, v) in f.params.iter().enumerate() {
                        if j > 0 {
                            self.out.push_str(", ");
                        }
                        let _ = write!(self.out, "{}_{}", self.vars.name(*v), v.0);
                    }
                    let _ = write!(self.out, ") at r{} = ", at.0);
                    self.indent += 1;
                    self.nl();
                    self.exp(&f.body);
                    self.indent -= 1;
                    self.nl();
                }
                self.out.push_str("in ");
                self.exp(body);
            }
            RExp::Letregion { regs, body } => {
                let rs: Vec<String> = regs.iter().map(|(r, m)| reg_str(*r, *m)).collect();
                let _ = write!(self.out, "letregion {} in", rs.join(", "));
                self.indent += 1;
                self.nl();
                self.exp(body);
                self.indent -= 1;
                self.nl();
                self.out.push_str("end");
            }
            RExp::Marker { id, body } => {
                let _ = write!(self.out, "<marker {id}> ");
                self.exp(body);
            }
            RExp::ExCon { exn, arg, at } => {
                let _ = write!(self.out, "exn#{}", exn.0);
                if let Some(a) = arg {
                    self.out.push('(');
                    self.exp(a);
                    self.out.push(')');
                }
                if let Some(r) = at {
                    let _ = write!(self.out, " at r{}", r.0);
                }
            }
            RExp::DeExn { scrut, .. } => {
                self.out.push_str("deexn ");
                self.exp(scrut);
            }
            RExp::Raise(e) => {
                self.out.push_str("raise ");
                self.exp(e);
            }
            RExp::Handle { body, var, handler } => {
                self.out.push('(');
                self.exp(body);
                let _ = write!(self.out, ") handle {}_{} => ", self.vars.name(*var), var.0);
                self.exp(handler);
            }
        }
    }

    fn list(&mut self, es: &[RExp]) {
        for (i, e) in es.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.exp(e);
        }
    }
}
