//! **RegionExp**: `LambdaExp` with explicit memory directives (paper §3).
//!
//! Every value-creating expression carries an `at ρ` *place*; `letregion`
//! delimits region lifetimes; functions carry formal region parameters and
//! known calls pass actual regions (*region polymorphism*).

use kit_lambda::exp::{Prim, VarId, VarTable};
use kit_lambda::ty::{ConId, DataEnv, ExnEnv, ExnId, TyConId};
use std::collections::HashMap;

/// A region variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegVar(pub u32);

/// An allocation place (a region variable).
pub type Place = RegVar;

/// Multiplicity of a region (representation inference, paper §3 and its
/// reference \[3\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mult {
    /// At most one value of statically known size: allocated in the
    /// activation record (a *finite region*).
    Finite,
    /// Unbounded: a linked list of region pages (an *infinite region*).
    Infinite,
}

/// One function of a region-polymorphic `fix` group.
#[derive(Debug, Clone, PartialEq)]
pub struct RFixFun {
    /// Function variable.
    pub var: VarId,
    /// Formal region parameters (regions the body allocates into that are
    /// bound at call sites).
    pub formals: Vec<RegVar>,
    /// Value parameters.
    pub params: Vec<VarId>,
    /// Body.
    pub body: RExp,
}

/// A region-annotated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RExp {
    /// Variable use.
    Var(VarId),
    /// Escaping use of a `fix`-bound function: allocates a closure pair
    /// `at` the place, closing over the given actual regions.
    FixVar {
        /// The function.
        var: VarId,
        /// Actual regions for the function's formals.
        rargs: Vec<Place>,
        /// Where the escaping closure is allocated.
        at: Place,
    },
    /// Integer constant (unboxed).
    Int(i64),
    /// Boolean constant (unboxed).
    Bool(bool),
    /// Unit (unboxed).
    Unit,
    /// String constant (data segment; no region).
    Str(String),
    /// Real constant, boxed `at` the place.
    Real(f64, Place),
    /// Primitive; allocating primitives carry a place.
    Prim(Prim, Vec<RExp>, Option<Place>),
    /// Tuple `at` the place.
    Record(Vec<RExp>, Place),
    /// Projection.
    Select(usize, Box<RExp>),
    /// Constructor application; nullary constructors are unboxed and have
    /// no place.
    Con {
        /// Datatype.
        tycon: TyConId,
        /// Constructor.
        con: ConId,
        /// Argument.
        arg: Option<Box<RExp>>,
        /// Allocation place for carrying constructors.
        at: Option<Place>,
    },
    /// Constructor-argument extraction.
    DeCon {
        /// Datatype.
        tycon: TyConId,
        /// Constructor.
        con: ConId,
        /// Scrutinee.
        scrut: Box<RExp>,
    },
    /// Branch on constructors.
    SwitchCon {
        /// Scrutinee.
        scrut: Box<RExp>,
        /// Datatype.
        tycon: TyConId,
        /// Arms.
        arms: Vec<(ConId, RExp)>,
        /// Default.
        default: Option<Box<RExp>>,
    },
    /// Branch on integers.
    SwitchInt {
        /// Scrutinee.
        scrut: Box<RExp>,
        /// Arms.
        arms: Vec<(i64, RExp)>,
        /// Default.
        default: Box<RExp>,
    },
    /// Branch on strings.
    SwitchStr {
        /// Scrutinee.
        scrut: Box<RExp>,
        /// Arms.
        arms: Vec<(String, RExp)>,
        /// Default.
        default: Box<RExp>,
    },
    /// Branch on exception constructors.
    SwitchExn {
        /// Scrutinee.
        scrut: Box<RExp>,
        /// Arms.
        arms: Vec<(ExnId, RExp)>,
        /// Default.
        default: Box<RExp>,
    },
    /// Conditional.
    If(Box<RExp>, Box<RExp>, Box<RExp>),
    /// Lambda; the closure is allocated `at` the place.
    Fn {
        /// Parameters.
        params: Vec<VarId>,
        /// Body.
        body: Box<RExp>,
        /// Closure allocation place.
        at: Place,
    },
    /// Application. `rargs` are the actual regions for a known call to a
    /// region-polymorphic function (empty otherwise).
    App {
        /// Callee.
        callee: Box<RExp>,
        /// Actual region arguments.
        rargs: Vec<Place>,
        /// Value arguments.
        args: Vec<RExp>,
    },
    /// Non-recursive binding.
    Let {
        /// Bound variable.
        var: VarId,
        /// Bound expression.
        rhs: Box<RExp>,
        /// Scope.
        body: Box<RExp>,
    },
    /// Recursive functions; the shared closure is allocated `at` the place.
    Fix {
        /// The group.
        funs: Vec<RFixFun>,
        /// Scope.
        body: Box<RExp>,
        /// Shared-closure allocation place.
        at: Place,
    },
    /// `letregion ρ1..ρn in body end` (paper §1.1). Regions are
    /// deallocated, newest first, when `body` completes.
    Letregion {
        /// Bound regions with their multiplicities.
        regs: Vec<(RegVar, Mult)>,
        /// Scope.
        body: Box<RExp>,
    },
    /// Internal: a `letregion` candidate point inserted by [`crate::annotate`]
    /// and resolved by [`crate::letregion`]; never reaches code generation.
    Marker {
        /// Index into the annotation pass's escape-set table.
        id: u32,
        /// Scope.
        body: Box<RExp>,
    },
    /// Exception construction; carrying exceptions allocate `at` a place.
    ExCon {
        /// The exception.
        exn: ExnId,
        /// Argument.
        arg: Option<Box<RExp>>,
        /// Allocation place.
        at: Option<Place>,
    },
    /// Exception-argument extraction.
    DeExn {
        /// The exception.
        exn: ExnId,
        /// Scrutinee.
        scrut: Box<RExp>,
    },
    /// Raise.
    Raise(Box<RExp>),
    /// Handle.
    Handle {
        /// Protected body.
        body: Box<RExp>,
        /// Variable bound to the exception.
        var: VarId,
        /// Handler.
        handler: Box<RExp>,
    },
}

impl RExp {
    /// Applies `f` to each direct child.
    pub fn for_each_child<'a>(&'a self, mut f: impl FnMut(&'a RExp)) {
        match self {
            RExp::Var(_)
            | RExp::FixVar { .. }
            | RExp::Int(_)
            | RExp::Bool(_)
            | RExp::Unit
            | RExp::Str(_)
            | RExp::Real(_, _) => {}
            RExp::Prim(_, args, _) => args.iter().for_each(f),
            RExp::Record(es, _) => es.iter().for_each(f),
            RExp::Select(_, e) | RExp::DeCon { scrut: e, .. } | RExp::DeExn { scrut: e, .. } => {
                f(e)
            }
            RExp::Con { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            RExp::SwitchCon {
                scrut,
                arms,
                default,
                ..
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                if let Some(d) = default {
                    f(d);
                }
            }
            RExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                f(default);
            }
            RExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                f(default);
            }
            RExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter().for_each(|(_, a)| f(a));
                f(default);
            }
            RExp::If(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            RExp::Fn { body, .. } => f(body),
            RExp::App { callee, args, .. } => {
                f(callee);
                args.iter().for_each(f);
            }
            RExp::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            RExp::Fix { funs, body, .. } => {
                funs.iter().for_each(|fun| f(&fun.body));
                f(body);
            }
            RExp::Letregion { body, .. } | RExp::Marker { body, .. } => f(body),
            RExp::ExCon { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            RExp::Raise(e) => f(e),
            RExp::Handle { body, handler, .. } => {
                f(body);
                f(handler);
            }
        }
    }

    /// Mutable version of [`RExp::for_each_child`].
    pub fn for_each_child_mut(&mut self, mut f: impl FnMut(&mut RExp)) {
        match self {
            RExp::Var(_)
            | RExp::FixVar { .. }
            | RExp::Int(_)
            | RExp::Bool(_)
            | RExp::Unit
            | RExp::Str(_)
            | RExp::Real(_, _) => {}
            RExp::Prim(_, args, _) => args.iter_mut().for_each(f),
            RExp::Record(es, _) => es.iter_mut().for_each(f),
            RExp::Select(_, e) | RExp::DeCon { scrut: e, .. } | RExp::DeExn { scrut: e, .. } => {
                f(e)
            }
            RExp::Con { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            RExp::SwitchCon {
                scrut,
                arms,
                default,
                ..
            } => {
                f(scrut);
                arms.iter_mut().for_each(|(_, a)| f(a));
                if let Some(d) = default {
                    f(d);
                }
            }
            RExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter_mut().for_each(|(_, a)| f(a));
                f(default);
            }
            RExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter_mut().for_each(|(_, a)| f(a));
                f(default);
            }
            RExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                f(scrut);
                arms.iter_mut().for_each(|(_, a)| f(a));
                f(default);
            }
            RExp::If(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            RExp::Fn { body, .. } => f(body),
            RExp::App { callee, args, .. } => {
                f(callee);
                args.iter_mut().for_each(f);
            }
            RExp::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            RExp::Fix { funs, body, .. } => {
                funs.iter_mut().for_each(|fun| f(&mut fun.body));
                f(body);
            }
            RExp::Letregion { body, .. } | RExp::Marker { body, .. } => f(body),
            RExp::ExCon { arg, .. } => {
                if let Some(a) = arg {
                    f(a);
                }
            }
            RExp::Raise(e) => f(e),
            RExp::Handle { body, handler, .. } => {
                f(body);
                f(handler);
            }
        }
    }

    /// All places mentioned by this node (not descending into children).
    pub fn own_places(&self) -> Vec<RegVar> {
        match self {
            RExp::Real(_, p) | RExp::Record(_, p) | RExp::Fn { at: p, .. } => vec![*p],
            RExp::Fix { at: p, .. } => vec![*p],
            RExp::Prim(_, _, Some(p)) => vec![*p],
            RExp::Con { at: Some(p), .. } | RExp::ExCon { at: Some(p), .. } => vec![*p],
            RExp::FixVar { rargs, at, .. } => {
                let mut v = rargs.clone();
                v.push(*at);
                v
            }
            RExp::App { rargs, .. } => rargs.clone(),
            _ => Vec::new(),
        }
    }
}

/// A complete RegionExp program.
#[derive(Debug, Clone)]
pub struct RProgram {
    /// Datatype environment (shared with the front-end).
    pub data: DataEnv,
    /// Exception environment.
    pub exns: ExnEnv,
    /// Variable names.
    pub vars: VarTable,
    /// The program body.
    pub body: RExp,
    /// Top-level ("global") regions, pushed at program start and popped at
    /// exit — the paper's `r1`, `r2`, ...
    pub globals: Vec<(RegVar, Mult)>,
    /// Total number of region variables.
    pub num_regvars: u32,
    /// Multiplicity of every region variable (formals are `Infinite`).
    pub mults: HashMap<RegVar, Mult>,
}
