//! Region inference (paper §3; Tofte–Talpin \[20,21\], Tofte–Birkedal \[17\])
//! and region representation inference (Birkedal–Tofte–Vejlstrup \[3\]).
//!
//! Translates the optimized, monomorphic-representation `LambdaExp` of
//! [`kit_lambda`] into **RegionExp** ([`rexp`]): every allocation point is
//! annotated with the region (*place*) its value goes into, `letregion`
//! constructs delimit region lifetimes, and functions are region
//! polymorphic (they receive formal region parameters at runtime).
//!
//! The phases:
//!
//! 1. [`annotate`] — region-annotated type reconstruction with unification
//!    over region and effect variables; `let`/`fix` bindings get region
//!    type schemes, recursive functions are inferred with bounded
//!    fixed-point iteration (region-polymorphic recursion);
//! 2. [`letregion`] — `letregion` placement: a region variable is bound at
//!    the smallest expression in which it occurs but from whose type and
//!    environment it is absent;
//! 3. [`multiplicity`] — representation inference: regions into which at
//!    most one value of statically known size is ever allocated become
//!    *finite regions* (stack-allocated in activation records); all others
//!    are *infinite*;
//! 4. GC-safe weakening (§2.6): with the collector enabled, the regions of
//!    values captured in a closure are added to the closure's latent
//!    effect, forcing them to live at least as long as the closure and
//!    thereby ruling out dangling pointers. Without the collector this is
//!    skipped and (safe) dangling pointers may occur — exactly the `r`
//!    mode of the paper.
//! 5. "Disabling region inference" (paper §4): every infinite region is
//!    collapsed onto one global region; finite regions are kept — this is
//!    the `gt` mode where the collector degenerates to plain Cheney.

pub mod annotate;
pub mod letregion;
pub mod multiplicity;
pub mod pretty;
pub mod rexp;
pub mod rtype;

pub use rexp::{Mult, Place, RExp, RFixFun, RProgram, RegVar};

/// Options controlling region inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionOptions {
    /// Apply the §2.6 weakening so the result is safe to garbage collect
    /// (no dangling pointers).
    pub gc_safe: bool,
    /// Collapse all infinite regions onto the global region ("disabling
    /// region inference", paper §4).
    pub disable: bool,
    /// Additionally collapse finite regions (everything heap-allocated in
    /// one region) — the generational-baseline configuration, since SML/NJ
    /// stack-allocates nothing.
    pub disable_finite: bool,
}

impl RegionOptions {
    /// Options for the `r`/`rt` modes (regions alone).
    pub fn regions_only() -> Self {
        RegionOptions {
            gc_safe: false,
            disable: false,
            disable_finite: false,
        }
    }

    /// Options for the `rgt` mode (regions + GC).
    pub fn with_gc() -> Self {
        RegionOptions {
            gc_safe: true,
            disable: false,
            disable_finite: false,
        }
    }

    /// Options for the `gt` mode (GC within one global region).
    pub fn disabled() -> Self {
        RegionOptions {
            gc_safe: true,
            disable: true,
            disable_finite: false,
        }
    }

    /// Options for the generational baseline: one heap, no stack
    /// allocation of values.
    pub fn baseline() -> Self {
        RegionOptions {
            gc_safe: true,
            disable: true,
            disable_finite: true,
        }
    }
}

/// Runs the full region-inference pipeline.
pub fn infer(prog: &kit_lambda::LProgram, opts: RegionOptions) -> RProgram {
    let mut ann = annotate::annotate(prog, opts.gc_safe);
    letregion::place(&mut ann);
    let mut rprog = ann.prog;
    multiplicity::infer_multiplicities(&mut rprog);
    if opts.disable_finite {
        multiplicity::collapse_all(&mut rprog);
    } else if opts.disable {
        multiplicity::collapse_infinite(&mut rprog);
    }
    rprog
}
