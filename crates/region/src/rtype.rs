//! Region-annotated types, effects and their unification stores.
//!
//! Following Tofte–Talpin, every boxed type constructor carries a region
//! variable and every arrow carries a *latent effect* — the set of regions
//! the function may `put` into or `get` from when applied. Region variables
//! live in a union-find store; effects are union-find nodes whose roots
//! carry a set of atomic region effects plus links to other effect nodes
//! (Talpin–Jouvelot style unification-based effect inference).

use kit_lambda::ty::TyConId;
use std::collections::{BTreeSet, HashMap};

/// A region unification variable (index into [`Stores`]).
pub type Reg = u32;
/// An effect unification variable.
pub type Eff = u32;
/// A type unification variable.
pub type TyV = u32;

/// A region-annotated type.
#[derive(Debug, Clone, PartialEq)]
pub enum RTy {
    /// Type unification variable (also erased source-level polymorphism).
    Var(TyV),
    /// Unboxed integer.
    Int,
    /// Unboxed boolean.
    Bool,
    /// Unboxed unit.
    Unit,
    /// Boxed real in a region.
    Real(Reg),
    /// String in a region (constants never inspect it).
    Str(Reg),
    /// Exception value in a region.
    Exn(Reg),
    /// Tuple in a region.
    Tuple(Vec<RTy>, Reg),
    /// Function: argument types, latent effect, result, closure region.
    Arrow(Vec<RTy>, Eff, Box<RTy>, Reg),
    /// Datatype in a region.
    Con(TyConId, Vec<RTy>, Reg),
    /// Reference cell in a region.
    Ref(Box<RTy>, Reg),
    /// Array in a region.
    Array(Box<RTy>, Reg),
}

impl RTy {
    /// The outermost region of a boxed type, if any.
    pub fn outer_region(&self) -> Option<Reg> {
        match self {
            RTy::Real(r)
            | RTy::Str(r)
            | RTy::Exn(r)
            | RTy::Tuple(_, r)
            | RTy::Arrow(_, _, _, r)
            | RTy::Con(_, _, r)
            | RTy::Ref(_, r)
            | RTy::Array(_, r) => Some(*r),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct EffNode {
    parent: Option<Eff>,
    regs: BTreeSet<Reg>,
    children: BTreeSet<Eff>,
}

/// Union-find stores for regions, effects and type variables.
#[derive(Debug, Default)]
pub struct Stores {
    reg_parent: Vec<Reg>,
    effs: Vec<EffNode>,
    tys: Vec<Option<RTy>>,
}

impl Stores {
    /// Creates empty stores.
    pub fn new() -> Self {
        Self::default()
    }

    // -------------------------------------------------------------- regions

    /// A fresh region variable.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = self.reg_parent.len() as Reg;
        self.reg_parent.push(r);
        r
    }

    /// Number of region variables created.
    pub fn num_regs(&self) -> usize {
        self.reg_parent.len()
    }

    /// Canonical representative of `r`.
    pub fn find_reg(&mut self, r: Reg) -> Reg {
        let p = self.reg_parent[r as usize];
        if p == r {
            return r;
        }
        let root = self.find_reg(p);
        self.reg_parent[r as usize] = root;
        root
    }

    /// Non-mutating find (no path compression).
    pub fn find_reg_ro(&self, mut r: Reg) -> Reg {
        while self.reg_parent[r as usize] != r {
            r = self.reg_parent[r as usize];
        }
        r
    }

    /// Unifies two region variables.
    pub fn union_reg(&mut self, a: Reg, b: Reg) {
        let ra = self.find_reg(a);
        let rb = self.find_reg(b);
        if ra != rb {
            self.reg_parent[ra as usize] = rb;
        }
    }

    // -------------------------------------------------------------- effects

    /// A fresh effect variable with empty effect.
    pub fn fresh_eff(&mut self) -> Eff {
        let e = self.effs.len() as Eff;
        self.effs.push(EffNode::default());
        e
    }

    /// Canonical representative of `e`.
    pub fn find_eff(&mut self, e: Eff) -> Eff {
        match self.effs[e as usize].parent {
            None => e,
            Some(p) => {
                let root = self.find_eff(p);
                self.effs[e as usize].parent = Some(root);
                root
            }
        }
    }

    /// Adds an atomic region effect (`put`/`get` ρ) to `e`.
    pub fn eff_add_reg(&mut self, e: Eff, r: Reg) {
        let e = self.find_eff(e);
        let r = self.find_reg(r);
        self.effs[e as usize].regs.insert(r);
    }

    /// Makes `child`'s effect part of `e` (e.g. a call's latent effect
    /// flowing into the caller's effect).
    pub fn eff_add_child(&mut self, e: Eff, child: Eff) {
        let e = self.find_eff(e);
        let c = self.find_eff(child);
        if e != c {
            self.effs[e as usize].children.insert(c);
        }
    }

    /// Unifies two effect variables, merging their sets.
    pub fn union_eff(&mut self, a: Eff, b: Eff) {
        let ra = self.find_eff(a);
        let rb = self.find_eff(b);
        if ra == rb {
            return;
        }
        let node = std::mem::take(&mut self.effs[ra as usize]);
        self.effs[ra as usize].parent = Some(rb);
        let tgt = &mut self.effs[rb as usize];
        tgt.regs.extend(node.regs);
        tgt.children.extend(node.children);
        self.effs[rb as usize].children.remove(&ra);
    }

    /// All (canonical) regions in the transitive closure of effect `e`.
    pub fn eff_regs(&mut self, e: Eff) -> BTreeSet<Reg> {
        let mut out = BTreeSet::new();
        let mut seen = BTreeSet::new();
        self.eff_regs_into(e, &mut out, &mut seen);
        out
    }

    fn eff_regs_into(&mut self, e: Eff, out: &mut BTreeSet<Reg>, seen: &mut BTreeSet<Eff>) {
        let e = self.find_eff(e);
        if !seen.insert(e) {
            return;
        }
        let regs: Vec<Reg> = self.effs[e as usize].regs.iter().copied().collect();
        for r in regs {
            let cr = self.find_reg(r);
            out.insert(cr);
        }
        let children: Vec<Eff> = self.effs[e as usize].children.iter().copied().collect();
        for c in children {
            self.eff_regs_into(c, out, seen);
        }
    }

    // ---------------------------------------------------------------- types

    /// A fresh type variable.
    pub fn fresh_ty(&mut self) -> RTy {
        let t = self.tys.len() as TyV;
        self.tys.push(None);
        RTy::Var(t)
    }

    /// Resolves the outermost variable links of a type.
    pub fn resolve(&self, ty: &RTy) -> RTy {
        let mut t = ty.clone();
        while let RTy::Var(v) = t {
            match &self.tys[v as usize] {
                Some(next) => t = next.clone(),
                None => return RTy::Var(v),
            }
        }
        t
    }

    /// Unifies two region-annotated types. `LambdaExp` is well-typed, so a
    /// constructor mismatch is an internal error.
    ///
    /// # Panics
    ///
    /// Panics on a type-constructor mismatch (compiler bug).
    pub fn unify(&mut self, a: &RTy, b: &RTy) {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (RTy::Var(x), RTy::Var(y)) if x == y => {}
            (RTy::Var(x), _) => self.tys[*x as usize] = Some(b),
            (_, RTy::Var(y)) => self.tys[*y as usize] = Some(a),
            (RTy::Int, RTy::Int) | (RTy::Bool, RTy::Bool) | (RTy::Unit, RTy::Unit) => {}
            (RTy::Real(r1), RTy::Real(r2))
            | (RTy::Str(r1), RTy::Str(r2))
            | (RTy::Exn(r1), RTy::Exn(r2)) => self.union_reg(*r1, *r2),
            (RTy::Tuple(xs, r1), RTy::Tuple(ys, r2)) if xs.len() == ys.len() => {
                self.union_reg(*r1, *r2);
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y);
                }
            }
            (RTy::Arrow(a1, e1, b1, r1), RTy::Arrow(a2, e2, b2, r2)) if a1.len() == a2.len() => {
                self.union_reg(*r1, *r2);
                self.union_eff(*e1, *e2);
                for (x, y) in a1.iter().zip(a2) {
                    self.unify(x, y);
                }
                self.unify(b1, b2);
            }
            (RTy::Con(c1, xs, r1), RTy::Con(c2, ys, r2)) if c1 == c2 && xs.len() == ys.len() => {
                self.union_reg(*r1, *r2);
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y);
                }
            }
            (RTy::Ref(x, r1), RTy::Ref(y, r2)) | (RTy::Array(x, r1), RTy::Array(y, r2)) => {
                self.union_reg(*r1, *r2);
                self.unify(x, y);
            }
            _ => panic!("region unification mismatch: {a:?} vs {b:?}"),
        }
    }

    /// Free (canonical) region variables of a type, including those in
    /// latent effects.
    pub fn frv(&mut self, ty: &RTy, out: &mut BTreeSet<Reg>) {
        match self.resolve(ty) {
            RTy::Var(_) | RTy::Int | RTy::Bool | RTy::Unit => {}
            RTy::Real(r) | RTy::Str(r) | RTy::Exn(r) => {
                let r = self.find_reg(r);
                out.insert(r);
            }
            RTy::Tuple(ts, r) => {
                let r = self.find_reg(r);
                out.insert(r);
                for t in &ts {
                    self.frv(t, out);
                }
            }
            RTy::Arrow(ps, e, b, r) => {
                let r = self.find_reg(r);
                out.insert(r);
                for p in &ps {
                    self.frv(p, out);
                }
                self.frv(&b, out);
                let eff = self.eff_regs(e);
                out.extend(eff);
            }
            RTy::Con(_, ts, r) => {
                let r = self.find_reg(r);
                out.insert(r);
                for t in &ts {
                    self.frv(t, out);
                }
            }
            RTy::Ref(t, r) | RTy::Array(t, r) => {
                let r = self.find_reg(r);
                out.insert(r);
                self.frv(&t, out);
            }
        }
    }

    /// Free (canonical) region variables of the type *skeleton* — like
    /// [`Stores::frv`] but without closing over latent-effect sets. Used
    /// for generalization: only skeleton regions are quantified (regions
    /// that appear solely in effects are local to some body and will be
    /// `letregion`-bound or become global); quantifying effect members
    /// would make region-polymorphic recursion diverge.
    pub fn frv_skel(&mut self, ty: &RTy, out: &mut BTreeSet<Reg>) {
        match self.resolve(ty) {
            RTy::Var(_) | RTy::Int | RTy::Bool | RTy::Unit => {}
            RTy::Real(r) | RTy::Str(r) | RTy::Exn(r) => {
                let r = self.find_reg(r);
                out.insert(r);
            }
            RTy::Tuple(ts, r) | RTy::Con(_, ts, r) => {
                let r = self.find_reg(r);
                out.insert(r);
                for t in &ts {
                    self.frv_skel(t, out);
                }
            }
            RTy::Arrow(ps, _, b, r) => {
                let r = self.find_reg(r);
                out.insert(r);
                for p in &ps {
                    self.frv_skel(p, out);
                }
                self.frv_skel(&b, out);
            }
            RTy::Ref(t, r) | RTy::Array(t, r) => {
                let r = self.find_reg(r);
                out.insert(r);
                self.frv_skel(&t, out);
            }
        }
    }

    /// Free effect variables of a type (canonical roots).
    pub fn fev(&mut self, ty: &RTy, out: &mut BTreeSet<Eff>) {
        match self.resolve(ty) {
            RTy::Arrow(ps, e, b, _) => {
                let e = self.find_eff(e);
                out.insert(e);
                for p in &ps {
                    self.fev(p, out);
                }
                self.fev(&b, out);
            }
            RTy::Tuple(ts, _) | RTy::Con(_, ts, _) => {
                for t in &ts {
                    self.fev(t, out);
                }
            }
            RTy::Ref(t, _) | RTy::Array(t, _) => self.fev(&t, out),
            _ => {}
        }
    }

    /// Free type variables of a type.
    pub fn ftv(&self, ty: &RTy, out: &mut BTreeSet<TyV>) {
        match self.resolve(ty) {
            RTy::Var(v) => {
                out.insert(v);
            }
            RTy::Tuple(ts, _) | RTy::Con(_, ts, _) => {
                for t in &ts {
                    self.ftv(t, out);
                }
            }
            RTy::Arrow(ps, _, b, _) => {
                for p in &ps {
                    self.ftv(p, out);
                }
                self.ftv(&b, out);
            }
            RTy::Ref(t, _) | RTy::Array(t, _) => self.ftv(&t, out),
            _ => {}
        }
    }
}

/// A region type scheme: quantified type, region and effect variables.
#[derive(Debug, Clone)]
pub struct RScheme {
    /// Quantified type variables (canonical at generalization time).
    pub qtys: Vec<TyV>,
    /// Quantified region variables.
    pub qregs: Vec<Reg>,
    /// Quantified effect variables.
    pub qeffs: Vec<Eff>,
    /// The body.
    pub ty: RTy,
}

impl RScheme {
    /// A monomorphic scheme.
    pub fn mono(ty: RTy) -> Self {
        RScheme {
            qtys: Vec::new(),
            qregs: Vec::new(),
            qeffs: Vec::new(),
            ty,
        }
    }
}

/// Result of instantiating a scheme: the type plus the region substitution
/// (formal → actual), used to pass actual regions at known calls.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The instantiated type.
    pub ty: RTy,
    /// Region substitution, in `qregs` order.
    pub reg_actuals: Vec<Reg>,
}

impl Stores {
    /// Instantiates `s` with fresh region/effect/type variables.
    pub fn instantiate(&mut self, s: &RScheme) -> Instance {
        let mut tmap: HashMap<TyV, RTy> = HashMap::new();
        for &q in &s.qtys {
            let f = self.fresh_ty();
            tmap.insert(q, f);
        }
        let mut rmap: HashMap<Reg, Reg> = HashMap::new();
        let mut reg_actuals = Vec::new();
        for &q in &s.qregs {
            let f = self.fresh_reg();
            rmap.insert(q, f);
            reg_actuals.push(f);
        }
        let mut emap: HashMap<Eff, Eff> = HashMap::new();
        for &q in &s.qeffs {
            let f = self.fresh_eff();
            emap.insert(q, f);
        }
        // Copy quantified effect sets under the substitution.
        for &q in &s.qeffs {
            let f = emap[&q];
            let root = self.find_eff(q);
            let regs: Vec<Reg> = self.effs[root as usize].regs.iter().copied().collect();
            let children: Vec<Eff> = self.effs[root as usize].children.iter().copied().collect();
            for r in regs {
                let cr = self.find_reg(r);
                let nr = rmap.get(&cr).copied().unwrap_or(cr);
                self.effs[f as usize].regs.insert(nr);
            }
            for c in children {
                let cc = self.find_eff(c);
                let nc = emap.get(&cc).copied().unwrap_or(cc);
                if nc != f {
                    self.effs[f as usize].children.insert(nc);
                }
            }
        }
        let ty = self.copy_ty(&s.ty, &tmap, &rmap, &emap);
        Instance { ty, reg_actuals }
    }

    fn copy_ty(
        &mut self,
        ty: &RTy,
        tmap: &HashMap<TyV, RTy>,
        rmap: &HashMap<Reg, Reg>,
        emap: &HashMap<Eff, Eff>,
    ) -> RTy {
        let sub_r = |st: &mut Self, r: Reg| {
            let c = st.find_reg(r);
            rmap.get(&c).copied().unwrap_or(c)
        };
        match self.resolve(ty) {
            RTy::Var(v) => tmap.get(&v).cloned().unwrap_or(RTy::Var(v)),
            RTy::Int => RTy::Int,
            RTy::Bool => RTy::Bool,
            RTy::Unit => RTy::Unit,
            RTy::Real(r) => RTy::Real(sub_r(self, r)),
            RTy::Str(r) => RTy::Str(sub_r(self, r)),
            RTy::Exn(r) => RTy::Exn(sub_r(self, r)),
            RTy::Tuple(ts, r) => {
                let nts = ts
                    .iter()
                    .map(|t| self.copy_ty(t, tmap, rmap, emap))
                    .collect();
                RTy::Tuple(nts, sub_r(self, r))
            }
            RTy::Arrow(ps, e, b, r) => {
                let nps = ps
                    .iter()
                    .map(|t| self.copy_ty(t, tmap, rmap, emap))
                    .collect();
                let nb = self.copy_ty(&b, tmap, rmap, emap);
                let ce = self.find_eff(e);
                let ne = emap.get(&ce).copied().unwrap_or(ce);
                RTy::Arrow(nps, ne, Box::new(nb), sub_r(self, r))
            }
            RTy::Con(c, ts, r) => {
                let nts = ts
                    .iter()
                    .map(|t| self.copy_ty(t, tmap, rmap, emap))
                    .collect();
                RTy::Con(c, nts, sub_r(self, r))
            }
            RTy::Ref(t, r) => {
                let nt = self.copy_ty(&t, tmap, rmap, emap);
                RTy::Ref(Box::new(nt), sub_r(self, r))
            }
            RTy::Array(t, r) => {
                let nt = self.copy_ty(&t, tmap, rmap, emap);
                RTy::Array(Box::new(nt), sub_r(self, r))
            }
        }
    }

    /// Generalizes `ty` against the environment's free variables.
    ///
    /// Quantified variables are listed in **structural traversal order** of
    /// the type, not by variable id: two alpha-equivalent schemes then list
    /// corresponding regions at the same positions, which the
    /// region-polymorphic calling convention relies on (call sites record
    /// actuals positionally against one fixed-point round's scheme).
    pub fn generalize(
        &mut self,
        ty: &RTy,
        env_frv: &BTreeSet<Reg>,
        env_fev: &BTreeSet<Eff>,
        env_ftv: &BTreeSet<TyV>,
    ) -> RScheme {
        let mut frv = Vec::new();
        self.frv_skel_ordered(ty, &mut frv);
        let mut fev = BTreeSet::new();
        self.fev(ty, &mut fev);
        let mut ftv = BTreeSet::new();
        self.ftv(ty, &mut ftv);
        let env_frv: BTreeSet<Reg> = env_frv.iter().map(|&r| self.find_reg(r)).collect();
        let env_fev: BTreeSet<Eff> = env_fev.iter().map(|&e| self.find_eff(e)).collect();
        RScheme {
            qtys: ftv.difference(env_ftv).copied().collect(),
            qregs: frv.into_iter().filter(|r| !env_frv.contains(r)).collect(),
            qeffs: fev.difference(&env_fev).copied().collect(),
            ty: ty.clone(),
        }
    }

    /// Skeleton regions in deterministic structural traversal order
    /// (deduplicated).
    pub fn frv_skel_ordered(&mut self, ty: &RTy, out: &mut Vec<Reg>) {
        let push = |st: &mut Self, out: &mut Vec<Reg>, r: Reg| {
            let c = st.find_reg(r);
            if !out.contains(&c) {
                out.push(c);
            }
        };
        match self.resolve(ty) {
            RTy::Var(_) | RTy::Int | RTy::Bool | RTy::Unit => {}
            RTy::Real(r) | RTy::Str(r) | RTy::Exn(r) => push(self, out, r),
            RTy::Tuple(ts, r) | RTy::Con(_, ts, r) => {
                push(self, out, r);
                for t in &ts {
                    self.frv_skel_ordered(t, out);
                }
            }
            RTy::Arrow(ps, _, b, r) => {
                push(self, out, r);
                for p in &ps {
                    self.frv_skel_ordered(p, out);
                }
                self.frv_skel_ordered(&b, out);
            }
            RTy::Ref(t, r) | RTy::Array(t, r) => {
                push(self, out, r);
                self.frv_skel_ordered(&t, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_union_find() {
        let mut st = Stores::new();
        let a = st.fresh_reg();
        let b = st.fresh_reg();
        let c = st.fresh_reg();
        st.union_reg(a, b);
        st.union_reg(b, c);
        assert_eq!(st.find_reg(a), st.find_reg(c));
    }

    #[test]
    fn unify_merges_regions() {
        let mut st = Stores::new();
        let r1 = st.fresh_reg();
        let r2 = st.fresh_reg();
        st.unify(&RTy::Real(r1), &RTy::Real(r2));
        assert_eq!(st.find_reg(r1), st.find_reg(r2));
    }

    #[test]
    fn effects_close_transitively() {
        let mut st = Stores::new();
        let r1 = st.fresh_reg();
        let r2 = st.fresh_reg();
        let e1 = st.fresh_eff();
        let e2 = st.fresh_eff();
        st.eff_add_reg(e2, r2);
        st.eff_add_child(e1, e2);
        st.eff_add_reg(e1, r1);
        let regs = st.eff_regs(e1);
        assert!(regs.contains(&st.find_reg(r1)));
        assert!(regs.contains(&st.find_reg(r2)));
    }

    #[test]
    fn effect_union_merges_sets() {
        let mut st = Stores::new();
        let r = st.fresh_reg();
        let e1 = st.fresh_eff();
        let e2 = st.fresh_eff();
        st.eff_add_reg(e1, r);
        st.union_eff(e1, e2);
        assert!(st.eff_regs(e2).contains(&st.find_reg(r)));
    }

    #[test]
    fn frv_includes_latent_effects() {
        let mut st = Stores::new();
        let rho = st.fresh_reg();
        let clos = st.fresh_reg();
        let e = st.fresh_eff();
        st.eff_add_reg(e, rho);
        let ty = RTy::Arrow(vec![RTy::Int], e, Box::new(RTy::Int), clos);
        let mut out = BTreeSet::new();
        st.frv(&ty, &mut out);
        assert!(
            out.contains(&st.find_reg(rho)),
            "latent effect region escapes"
        );
        assert!(out.contains(&st.find_reg(clos)));
    }

    #[test]
    fn instantiation_freshens_quantified_regions() {
        let mut st = Stores::new();
        let rho = st.fresh_reg();
        let e = st.fresh_eff();
        st.eff_add_reg(e, rho);
        let ty = RTy::Arrow(
            vec![RTy::Int],
            e,
            Box::new(RTy::Tuple(vec![RTy::Int, RTy::Int], rho)),
            st.fresh_reg(),
        );
        let scheme = RScheme {
            qtys: vec![],
            qregs: vec![rho],
            qeffs: vec![e],
            ty,
        };
        let i1 = st.instantiate(&scheme);
        let i2 = st.instantiate(&scheme);
        assert_eq!(i1.reg_actuals.len(), 1);
        assert_ne!(
            st.find_reg(i1.reg_actuals[0]),
            st.find_reg(i2.reg_actuals[0]),
            "instances get distinct result regions"
        );
        // The instantiated effect must mention the instantiated region, not
        // the formal.
        let RTy::Arrow(_, ne, _, _) = st.resolve(&i1.ty) else {
            panic!()
        };
        assert!(st.eff_regs(ne).contains(&st.find_reg(i1.reg_actuals[0])));
    }

    #[test]
    fn generalize_respects_env() {
        let mut st = Stores::new();
        let kept = st.fresh_reg();
        let gened = st.fresh_reg();
        let e = st.fresh_eff();
        let ty = RTy::Arrow(
            vec![RTy::Real(kept)],
            e,
            Box::new(RTy::Real(gened)),
            st.fresh_reg(),
        );
        let mut env = BTreeSet::new();
        env.insert(kept);
        let s = st.generalize(&ty, &env, &BTreeSet::new(), &BTreeSet::new());
        assert!(!s.qregs.contains(&st.find_reg(kept)));
        assert!(s.qregs.contains(&st.find_reg(gened)));
    }
}
