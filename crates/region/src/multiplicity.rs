//! Region representation inference (paper §3, Birkedal–Tofte–Vejlstrup):
//! multiplicity analysis deciding finite vs infinite regions, and the
//! "disable region inference" collapse used for the `gt` mode.

use crate::rexp::{Mult, RExp, RProgram, RegVar};
use kit_lambda::exp::Prim;
use std::collections::HashMap;

#[derive(Debug, Default, Clone)]
struct Usage {
    /// Static allocation sites with this place.
    sites: u32,
    /// Some site sits under a `fn`/`fix` boundary relative to the binding —
    /// it may execute many times per region lifetime.
    under_lambda: bool,
    /// Passed as an actual region argument (callee may allocate repeatedly).
    as_rarg: bool,
    /// Receives a large object (strings/arrays need the region's
    /// large-object list, so the region must be infinite).
    large: bool,
}

/// Decides [`Mult::Finite`] vs [`Mult::Infinite`] for every `letregion`
/// binding and every global, and drops regions that are never used.
pub fn infer_multiplicities(prog: &mut RProgram) {
    let mut usage: HashMap<RegVar, Usage> = HashMap::new();
    scan(&prog.body, 0, &mut usage);
    // Finite candidate: one site, no region arguments, no large objects.
    // Whether the site is under a lambda is judged *relative to the
    // binding* during the rewrite (for globals: relative to the program).
    let decide = |r: RegVar, usage: &HashMap<RegVar, Usage>| -> Option<Mult> {
        let u = usage.get(&r).cloned().unwrap_or_default();
        if u.sites == 0 && !u.as_rarg {
            return None; // dead region: drop the binding
        }
        if u.sites == 1 && !u.as_rarg && !u.large {
            Some(Mult::Finite)
        } else {
            Some(Mult::Infinite)
        }
    };
    rewrite(&mut prog.body, &usage, &decide);
    let globals = std::mem::take(&mut prog.globals);
    prog.globals = globals
        .into_iter()
        .filter_map(|(r, _)| {
            decide(r, &usage).map(|m| {
                let u = usage.get(&r).cloned().unwrap_or_default();
                (
                    r,
                    if m == Mult::Finite && u.under_lambda {
                        Mult::Infinite
                    } else {
                        m
                    },
                )
            })
        })
        .collect();
    prog.mults = usage.keys().map(|&r| (r, Mult::Infinite)).collect();
    // Record the final multiplicities.
    let mut mults = HashMap::new();
    collect_mults(&prog.body, &mut mults);
    for (r, m) in &prog.globals {
        mults.insert(*r, *m);
    }
    prog.mults = mults;
}

fn scan(e: &RExp, depth: u32, usage: &mut HashMap<RegVar, Usage>) {
    let site = |r: RegVar, large: bool, usage: &mut HashMap<RegVar, Usage>| {
        let u = usage.entry(r).or_default();
        u.sites += 1;
        u.large |= large;
        if depth > 0 {
            u.under_lambda = true;
        }
    };
    match e {
        RExp::Real(_, p) | RExp::Record(_, p) | RExp::Fn { at: p, .. } => site(*p, false, usage),
        RExp::Fix { at, .. } => site(*at, false, usage),
        RExp::Prim(p, _, Some(place)) => {
            let large = matches!(
                p,
                Prim::StrConcat | Prim::ItoS | Prim::RtoS | Prim::Chr | Prim::ArrNew
            );
            site(*place, large, usage);
        }
        RExp::Con { at: Some(p), .. } | RExp::ExCon { at: Some(p), .. } => site(*p, false, usage),
        RExp::FixVar { rargs, at, .. } => {
            site(*at, false, usage);
            for r in rargs {
                usage.entry(*r).or_default().as_rarg = true;
            }
        }
        RExp::App { rargs, .. } => {
            for r in rargs {
                usage.entry(*r).or_default().as_rarg = true;
            }
        }
        _ => {}
    }
    // Descend; lambda boundaries bump the depth so sites inside them are
    // "executed many times" relative to regions bound outside. A region
    // bound *inside* the lambda never sees the boundary because its
    // letregion node is itself inside — its sites were counted at depth
    // relative to the whole program, so compare against the letregion's
    // own depth instead: we conservatively mark `under_lambda` for any
    // site under *any* lambda and additionally allow the common case by
    // re-scanning at rewrite time.
    match e {
        RExp::Fn { body, .. } => scan(body, depth + 1, usage),
        RExp::Fix { funs, body, .. } => {
            for f in funs {
                scan(&f.body, depth + 1, usage);
            }
            scan(body, depth, usage);
        }
        _ => e.for_each_child(|c| scan(c, depth, usage)),
    }
}

/// Re-scan a `letregion` body with the binding as depth 0 to decide
/// whether the single site is under a lambda *relative to the binding*.
fn under_lambda_rel(body: &RExp, r: RegVar) -> bool {
    fn go(e: &RExp, r: RegVar, depth: u32, found: &mut bool) {
        if depth > 0 && e.own_places().contains(&r) {
            *found = true;
        }
        match e {
            RExp::Fn { body, .. } => go(body, r, depth + 1, found),
            RExp::Fix { funs, body, .. } => {
                for f in funs {
                    go(&f.body, r, depth + 1, found);
                }
                go(body, r, depth, found);
            }
            _ => e.for_each_child(|c| go(c, r, depth, found)),
        }
    }
    let mut found = false;
    go(body, r, 0, &mut found);
    found
}

fn rewrite(
    e: &mut RExp,
    usage: &HashMap<RegVar, Usage>,
    decide: &impl Fn(RegVar, &HashMap<RegVar, Usage>) -> Option<Mult>,
) {
    e.for_each_child_mut(|c| rewrite(c, usage, decide));
    if let RExp::Letregion { regs, body } = e {
        let mut new_regs = Vec::new();
        for (r, _) in regs.iter() {
            match decide(*r, usage) {
                None => {}
                Some(Mult::Finite) => {
                    // Finiteness was judged against global lambda depth;
                    // accept sites under lambdas only if the lambda is
                    // outside this binding.
                    let m = if under_lambda_rel(body, *r) {
                        Mult::Infinite
                    } else {
                        Mult::Finite
                    };
                    new_regs.push((*r, m));
                }
                Some(m) => new_regs.push((*r, m)),
            }
        }
        if new_regs.is_empty() {
            let inner = std::mem::replace(body.as_mut(), RExp::Unit);
            *e = inner;
        } else {
            *regs = new_regs;
        }
    }
}

fn collect_mults(e: &RExp, out: &mut HashMap<RegVar, Mult>) {
    if let RExp::Letregion { regs, .. } = e {
        for (r, m) in regs {
            out.insert(*r, *m);
        }
    }
    e.for_each_child(|c| collect_mults(c, out));
}

/// "Disabling region inference" (paper §4): every infinite region —
/// letregion-bound, global, or passed as a region argument — is replaced
/// by one global region; finite regions are kept (values still go on the
/// stack). The collector then degenerates to plain Cheney within one
/// region.
pub fn collapse_infinite(prog: &mut RProgram) {
    let global = RegVar(prog.num_regvars);
    prog.num_regvars += 1;
    let mut infinite: HashMap<RegVar, RegVar> = HashMap::new();
    for (r, m) in &prog.globals {
        if *m == Mult::Infinite {
            infinite.insert(*r, global);
        }
    }
    collect_infinite(&prog.body, global, &mut infinite);
    // Region arguments always map to the global region too (their formals
    // are infinite by construction).
    subst(&mut prog.body, &infinite, global);
    strip_letregions(&mut prog.body);
    let mut globals: Vec<(RegVar, Mult)> = prog
        .globals
        .iter()
        .filter(|(_, m)| *m == Mult::Finite)
        .copied()
        .collect();
    globals.insert(0, (global, Mult::Infinite));
    // Finite letregion-bound regions stay bound in the body; infinite ones
    // are gone. Globals: finite globals stay, infinite collapse into one.
    prog.globals = globals;
    prog.mults.insert(global, Mult::Infinite);
}

/// Collapses *every* region — finite ones included — onto one global
/// region, for the generational baseline (SML/NJ allocates everything in
/// the heap and "uses no stack at all", paper §1.1).
pub fn collapse_all(prog: &mut RProgram) {
    force_all_infinite(&mut prog.body);
    for (_, m) in prog.globals.iter_mut() {
        *m = Mult::Infinite;
    }
    collapse_infinite(prog);
}

fn force_all_infinite(e: &mut RExp) {
    if let RExp::Letregion { regs, .. } = e {
        for (_, m) in regs.iter_mut() {
            *m = Mult::Infinite;
        }
    }
    e.for_each_child_mut(force_all_infinite);
}

fn collect_infinite(e: &RExp, global: RegVar, map: &mut HashMap<RegVar, RegVar>) {
    if let RExp::Letregion { regs, .. } = e {
        for (r, m) in regs {
            if *m == Mult::Infinite {
                map.insert(*r, global);
            }
        }
    }
    if let RExp::Fix { funs, .. } = e {
        for f in funs {
            for r in &f.formals {
                map.insert(*r, global);
            }
        }
    }
    e.for_each_child(|c| collect_infinite(c, global, map));
}

fn subst(e: &mut RExp, map: &HashMap<RegVar, RegVar>, global: RegVar) {
    let s = |r: &mut RegVar| {
        if let Some(n) = map.get(r) {
            *r = *n;
        }
    };
    match e {
        RExp::Real(_, p) | RExp::Record(_, p) | RExp::Fn { at: p, .. } => s(p),
        RExp::Fix { at, funs, .. } => {
            s(at);
            for f in funs.iter_mut() {
                for r in &mut f.formals {
                    *r = global;
                }
            }
        }
        RExp::Prim(_, _, Some(p)) => s(p),
        RExp::Con { at: Some(p), .. } | RExp::ExCon { at: Some(p), .. } => s(p),
        RExp::FixVar { rargs, at, .. } => {
            for r in rargs.iter_mut() {
                *r = global;
            }
            s(at);
        }
        RExp::App { rargs, .. } => {
            for r in rargs.iter_mut() {
                *r = global;
            }
        }
        _ => {}
    }
    e.for_each_child_mut(|c| subst(c, map, global));
}

fn strip_letregions(e: &mut RExp) {
    e.for_each_child_mut(strip_letregions);
    if let RExp::Letregion { regs, body } = e {
        regs.retain(|(_, m)| *m == Mult::Finite);
        if regs.is_empty() {
            let inner = std::mem::replace(body.as_mut(), RExp::Unit);
            *e = inner;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rexp::{RExp, RProgram};

    fn prog(body: RExp, globals: Vec<(RegVar, Mult)>) -> RProgram {
        RProgram {
            data: kit_lambda::ty::DataEnv::new(),
            exns: kit_lambda::ty::ExnEnv::new(),
            vars: kit_lambda::exp::VarTable::new(),
            body,
            globals,
            num_regvars: 10,
            mults: Default::default(),
        }
    }

    #[test]
    fn single_site_region_is_finite() {
        let body = RExp::Letregion {
            regs: vec![(RegVar(0), Mult::Infinite)],
            body: Box::new(RExp::Record(vec![RExp::Int(1)], RegVar(0))),
        };
        let mut p = prog(body, vec![]);
        infer_multiplicities(&mut p);
        let RExp::Letregion { regs, .. } = &p.body else {
            panic!()
        };
        assert_eq!(regs[0].1, Mult::Finite);
    }

    #[test]
    fn site_under_lambda_is_infinite() {
        let body = RExp::Letregion {
            regs: vec![(RegVar(0), Mult::Infinite)],
            body: Box::new(RExp::Fn {
                params: vec![],
                body: Box::new(RExp::Record(vec![RExp::Int(1)], RegVar(0))),
                at: RegVar(1),
            }),
        };
        let mut p = prog(body, vec![(RegVar(1), Mult::Infinite)]);
        infer_multiplicities(&mut p);
        let RExp::Letregion { regs, .. } = &p.body else {
            panic!()
        };
        assert_eq!(regs[0].1, Mult::Infinite);
    }

    #[test]
    fn multi_site_region_is_infinite() {
        let body = RExp::Letregion {
            regs: vec![(RegVar(0), Mult::Infinite)],
            body: Box::new(RExp::Record(
                vec![
                    RExp::Record(vec![RExp::Int(1)], RegVar(0)),
                    RExp::Record(vec![RExp::Int(2)], RegVar(0)),
                ],
                RegVar(1),
            )),
        };
        let mut p = prog(body, vec![(RegVar(1), Mult::Infinite)]);
        infer_multiplicities(&mut p);
        let RExp::Letregion { regs, .. } = &p.body else {
            panic!()
        };
        assert_eq!(regs[0].1, Mult::Infinite);
    }

    #[test]
    fn dead_region_binding_dropped() {
        let body = RExp::Letregion {
            regs: vec![(RegVar(0), Mult::Infinite)],
            body: Box::new(RExp::Int(1)),
        };
        let mut p = prog(body, vec![]);
        infer_multiplicities(&mut p);
        assert_eq!(p.body, RExp::Int(1));
    }

    #[test]
    fn string_allocation_forces_infinite() {
        let body = RExp::Letregion {
            regs: vec![(RegVar(0), Mult::Infinite)],
            body: Box::new(RExp::Prim(Prim::ItoS, vec![RExp::Int(5)], Some(RegVar(0)))),
        };
        let mut p = prog(body, vec![]);
        infer_multiplicities(&mut p);
        let RExp::Letregion { regs, .. } = &p.body else {
            panic!()
        };
        assert_eq!(regs[0].1, Mult::Infinite);
    }

    #[test]
    fn collapse_rewrites_infinite_to_global() {
        let body = RExp::Letregion {
            regs: vec![(RegVar(0), Mult::Infinite)],
            body: Box::new(RExp::Record(
                vec![
                    RExp::Record(vec![RExp::Int(1)], RegVar(0)),
                    RExp::Record(vec![RExp::Int(2)], RegVar(0)),
                ],
                RegVar(1),
            )),
        };
        let mut p = prog(body, vec![(RegVar(1), Mult::Infinite)]);
        infer_multiplicities(&mut p);
        collapse_infinite(&mut p);
        let g = p.globals[0].0;
        // No letregion remains. The outer record region (one site) stays a
        // finite stack region — the paper keeps finite regions in `gt` mode
        // — while the two-site inner region collapses onto the global.
        let RExp::Record(es, p1) = &p.body else {
            panic!("{:?}", p.body)
        };
        assert_eq!(*p1, RegVar(1));
        assert!(p.globals.contains(&(RegVar(1), Mult::Finite)));
        let RExp::Record(_, p2) = &es[0] else {
            panic!()
        };
        assert_eq!(*p2, g);
        let RExp::Record(_, p3) = &es[1] else {
            panic!()
        };
        assert_eq!(*p3, g);
    }
}
