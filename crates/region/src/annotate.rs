//! Region-annotated type reconstruction (the heart of region inference).
//!
//! The pass re-types the (alpha-unique, monomorphic-representation)
//! `LambdaExp` program with [`crate::rtype::RTy`] types, assigning a fresh
//! region variable to every allocation point and unifying regions exactly
//! where types unify. Arrows carry latent effects; every allocation adds a
//! `put`, every inspection a `get`, into the effect of the enclosing
//! function.
//!
//! `fix`-bound functions are **region polymorphic**: their schemes quantify
//! region and effect variables local to the function, and each call site
//! instantiates them with fresh actuals (Tofte–Talpin). Region-polymorphic
//! *recursion* is inferred by bounded fixed-point iteration: bodies are
//! re-annotated against the previous scheme until the scheme reaches a
//! fixed point (compared up to alpha-equivalence), falling back to
//! region-monomorphic recursion if the bound is exceeded.
//!
//! The §2.6 weakening (`gc_safe`): the regions of values captured by a
//! closure are added to the closure's latent effect, so they stay live at
//! least as long as the closure, ruling out dangling pointers. Without it
//! (`r` mode) a captured-but-unused value's region may die first — the
//! paper's example of a safe dangling pointer.
//!
//! Output: an [`RExp`] with dense [`RegVar`] numbering, plus per-marker
//! escape sets consumed by `letregion` placement.

use crate::rexp::{RExp, RFixFun, RProgram, RegVar};
use crate::rtype::{Eff, Instance, RScheme, RTy, Reg, Stores};
use kit_lambda::exp::{FixFun, LExp, Prim, VarId};
use kit_lambda::ty::{ConId, SchemeTy, TyConId};
use kit_lambda::LProgram;
use std::collections::{BTreeSet, HashMap};

/// Result of annotation: the program (with [`RExp::Marker`] nodes still in
/// place) and the per-marker escape sets (dense region numbering).
#[derive(Debug)]
pub struct Annotated {
    /// The annotated program; `globals` is empty until placement runs.
    pub prog: RProgram,
    /// For each marker id: regions that must *not* be bound at or below it.
    pub marker_escapes: Vec<BTreeSet<RegVar>>,
    /// Regions escaping globally (program result, raised exceptions).
    pub global_escapes: BTreeSet<RegVar>,
}

/// Runs annotation over an optimized `LambdaExp` program.
pub fn annotate(prog: &LProgram, gc_safe: bool) -> Annotated {
    let mut ann = Ann {
        st: Stores::new(),
        prog,
        env: HashMap::new(),
        cur_eff: Vec::new(),
        markers: Vec::new(),
        fixmeta: HashMap::new(),
        global_frv: BTreeSet::new(),
        gc_safe,
    };
    let top_eff = ann.st.fresh_eff();
    ann.cur_eff.push(top_eff);
    let (body, ty) = ann.ann(&prog.body);
    // The program result escapes.
    let mut res = BTreeSet::new();
    ann.st.frv(&ty, &mut res);
    ann.global_frv.extend(res);
    ann.finalize(body)
}

#[derive(Debug, Clone)]
enum Bind {
    Mono(RTy),
    /// Type-polymorphic, region-monomorphic (`let`-bound values).
    PolyVal(RScheme),
    /// Region-polymorphic `fix` function.
    Fix(RScheme),
}

struct MarkerInfo {
    /// (type, regions-to-exclude) pairs: the node type plus the types of
    /// the node's free variables (schemes exclude their quantified
    /// regions).
    tys: Vec<(RTy, Vec<Reg>)>,
}

struct FixMeta {
    /// Indices into the scheme's `qregs` that are runtime formals (regions
    /// the body allocates into).
    formal_idx: Vec<usize>,
}

struct Ann<'a> {
    st: Stores,
    prog: &'a LProgram,
    env: HashMap<VarId, Bind>,
    cur_eff: Vec<Eff>,
    markers: Vec<MarkerInfo>,
    fixmeta: HashMap<VarId, FixMeta>,
    global_frv: BTreeSet<Reg>,
    gc_safe: bool,
}

impl Ann<'_> {
    fn eff(&self) -> Eff {
        *self.cur_eff.last().unwrap()
    }

    fn put(&mut self, r: Reg) {
        let e = self.eff();
        self.st.eff_add_reg(e, r);
    }

    fn get_ty(&mut self, ty: &RTy) {
        if let Some(r) = self.st.resolve(ty).outer_region() {
            let e = self.eff();
            self.st.eff_add_reg(e, r);
        }
    }

    /// Converts a constructor-argument scheme to an `RTy`.
    ///
    /// Datatypes are **region uniform** (as in the ML Kit's basic region
    /// typing): every boxed component in a non-parameter position — the
    /// recursive spine, nested datatypes, tuples, strings, reals — lives in
    /// `self_reg`, the datatype's own region. Only type-parameter
    /// positions carry their instantiation's regions. This is what makes
    /// the component regions visible in the datatype's (single-region)
    /// type, so escape analysis cannot lose them.
    fn conv_scheme(&mut self, s: &SchemeTy, targs: &[RTy], self_reg: Reg) -> RTy {
        match s {
            SchemeTy::Param(i) => targs[*i as usize].clone(),
            SchemeTy::Int => RTy::Int,
            SchemeTy::Bool => RTy::Bool,
            SchemeTy::Unit => RTy::Unit,
            SchemeTy::Real => RTy::Real(self_reg),
            SchemeTy::Str => RTy::Str(self_reg),
            SchemeTy::Exn => RTy::Exn(self_reg),
            SchemeTy::Con(tc, args) => {
                let nargs = args
                    .iter()
                    .map(|a| self.conv_scheme(a, targs, self_reg))
                    .collect();
                RTy::Con(*tc, nargs, self_reg)
            }
            SchemeTy::Arrow(a, b) => {
                // Functions stored in datatypes: the closure shares the
                // spine region; the latent effect additionally records a
                // use of the spine so callers keep it alive.
                let na = self.conv_scheme(a, targs, self_reg);
                let nb = self.conv_scheme(b, targs, self_reg);
                let e = self.st.fresh_eff();
                self.st.eff_add_reg(e, self_reg);
                RTy::Arrow(vec![na], e, Box::new(nb), self_reg)
            }
            SchemeTy::Tuple(ts) => {
                let nts = ts
                    .iter()
                    .map(|t| self.conv_scheme(t, targs, self_reg))
                    .collect();
                RTy::Tuple(nts, self_reg)
            }
            SchemeTy::Ref(t) => {
                let nt = self.conv_scheme(t, targs, self_reg);
                RTy::Ref(Box::new(nt), self_reg)
            }
            SchemeTy::Array(t) => {
                let nt = self.conv_scheme(t, targs, self_reg);
                RTy::Array(Box::new(nt), self_reg)
            }
        }
    }

    /// Records a `letregion` candidate around `inner`.
    fn marker(&mut self, inner: RExp, node_ty: &RTy, lexp: &LExp) -> RExp {
        let mut tys = vec![(node_ty.clone(), Vec::new())];
        for v in lexp.free_vars() {
            match self.env.get(&v) {
                Some(Bind::Mono(t)) => tys.push((t.clone(), Vec::new())),
                Some(Bind::PolyVal(s)) | Some(Bind::Fix(s)) => {
                    tys.push((s.ty.clone(), s.qregs.clone()));
                }
                None => {}
            }
        }
        let id = self.markers.len() as u32;
        self.markers.push(MarkerInfo { tys });
        RExp::Marker {
            id,
            body: Box::new(inner),
        }
    }

    /// Environment free-variable sets for generalization, restricted to the
    /// variables free in `lexp`.
    fn env_free_sets(
        &mut self,
        lexp_fvs: &BTreeSet<VarId>,
    ) -> (BTreeSet<Reg>, BTreeSet<Eff>, BTreeSet<u32>) {
        let mut frv = BTreeSet::new();
        let mut fev = BTreeSet::new();
        let mut ftv = BTreeSet::new();
        for v in lexp_fvs {
            let Some(b) = self.env.get(v).cloned() else {
                continue;
            };
            match b {
                Bind::Mono(t) => {
                    self.st.frv(&t, &mut frv);
                    self.st.fev(&t, &mut fev);
                    self.st.ftv(&t, &mut ftv);
                }
                Bind::PolyVal(s) | Bind::Fix(s) => {
                    let mut f = BTreeSet::new();
                    self.st.frv(&s.ty, &mut f);
                    for q in &s.qregs {
                        f.remove(&self.st.find_reg(*q));
                    }
                    frv.extend(f);
                    let mut e = BTreeSet::new();
                    self.st.fev(&s.ty, &mut e);
                    for q in &s.qeffs {
                        e.remove(&self.st.find_eff(*q));
                    }
                    fev.extend(e);
                    let mut t = BTreeSet::new();
                    self.st.ftv(&s.ty, &mut t);
                    for q in &s.qtys {
                        t.remove(q);
                    }
                    ftv.extend(t);
                }
            }
        }
        (frv, fev, ftv)
    }

    // --------------------------------------------------------------- driver

    fn ann(&mut self, e: &LExp) -> (RExp, RTy) {
        match e {
            LExp::Var(v) => {
                let b = self
                    .env
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| panic!("unbound variable {} in region inference", v.0));
                match b {
                    Bind::Mono(t) => (RExp::Var(*v), t),
                    Bind::PolyVal(s) => {
                        let inst = self.st.instantiate(&s);
                        (RExp::Var(*v), inst.ty)
                    }
                    Bind::Fix(s) => {
                        // Escaping use of a fix function: allocate a pair
                        // closure; the shared closure's region stays in the
                        // latent effect so it outlives the pair.
                        let inst = self.st.instantiate(&s);
                        let RTy::Arrow(ps, eff, ret, shared_reg) = self.st.resolve(&inst.ty) else {
                            panic!("fix-bound variable with non-arrow type")
                        };
                        let pair_reg = self.st.fresh_reg();
                        self.st.eff_add_reg(eff, shared_reg);
                        self.put(pair_reg);
                        let ty = RTy::Arrow(ps, eff, ret, pair_reg);
                        (
                            RExp::FixVar {
                                var: *v,
                                rargs: inst.reg_actuals.iter().map(|&r| RegVar(r)).collect(),
                                at: RegVar(pair_reg),
                            },
                            ty,
                        )
                    }
                }
            }
            LExp::Int(n) => (RExp::Int(*n), RTy::Int),
            LExp::Bool(b) => (RExp::Bool(*b), RTy::Bool),
            LExp::Unit => (RExp::Unit, RTy::Unit),
            LExp::Str(s) => {
                // Constants live in the data segment; the region in the
                // type is never allocated into.
                let r = self.st.fresh_reg();
                (RExp::Str(s.clone()), RTy::Str(r))
            }
            LExp::Real(x) => {
                let r = self.st.fresh_reg();
                self.put(r);
                (RExp::Real(*x, RegVar(r)), RTy::Real(r))
            }
            LExp::Prim(p, args) => self.ann_prim(*p, args),
            LExp::Record(es) => {
                let mut res = Vec::new();
                let mut tys = Vec::new();
                for e in es {
                    let (re, t) = self.ann(e);
                    res.push(re);
                    tys.push(t);
                }
                let r = self.st.fresh_reg();
                self.put(r);
                (RExp::Record(res, RegVar(r)), RTy::Tuple(tys, r))
            }
            LExp::Select { i, arity, tup } => {
                let (re, t) = self.ann(tup);
                let comps: Vec<RTy> = (0..*arity).map(|_| self.st.fresh_ty()).collect();
                let reg = self.st.fresh_reg();
                self.st.unify(&t, &RTy::Tuple(comps.clone(), reg));
                self.get_ty(&t);
                (RExp::Select(*i, Box::new(re)), comps[*i].clone())
            }
            LExp::Con {
                tycon, con, arg, ..
            } => self.ann_con(*tycon, *con, arg.as_deref()),
            LExp::DeCon { tycon, con, scrut } => {
                let (rs, t) = self.ann(scrut);
                let arity = self.prog.data.get(*tycon).arity;
                let want_targs: Vec<RTy> = (0..arity).map(|_| self.st.fresh_ty()).collect();
                let want_reg = self.st.fresh_reg();
                self.st.unify(&t, &RTy::Con(*tycon, want_targs, want_reg));
                self.get_ty(&t);
                let RTy::Con(_, targs, spine) = self.st.resolve(&t) else {
                    unreachable!()
                };
                let scheme = self.prog.data.get(*tycon).constructors[con.0 as usize]
                    .arg
                    .clone()
                    .expect("decon of nullary constructor");
                let arg_ty = self.conv_scheme(&scheme, &targs, spine);
                (
                    RExp::DeCon {
                        tycon: *tycon,
                        con: *con,
                        scrut: Box::new(rs),
                    },
                    arg_ty,
                )
            }
            LExp::SwitchCon {
                scrut,
                tycon,
                arms,
                default,
            } => {
                let (rs, t) = self.ann(scrut);
                let arity = self.prog.data.get(*tycon).arity;
                let want_targs: Vec<RTy> = (0..arity).map(|_| self.st.fresh_ty()).collect();
                let want_reg = self.st.fresh_reg();
                self.st.unify(&t, &RTy::Con(*tycon, want_targs, want_reg));
                self.get_ty(&t);
                let result = self.st.fresh_ty();
                let mut rarms = Vec::new();
                for (c, a) in arms {
                    let (ra, ta) = self.ann_armed(a);
                    self.st.unify(&ta, &result);
                    rarms.push((*c, ra));
                }
                let rdefault = default.as_ref().map(|d| {
                    let (rd, td) = self.ann_armed(d);
                    self.st.unify(&td, &result);
                    Box::new(rd)
                });
                (
                    RExp::SwitchCon {
                        scrut: Box::new(rs),
                        tycon: *tycon,
                        arms: rarms,
                        default: rdefault,
                    },
                    result,
                )
            }
            LExp::SwitchInt {
                scrut,
                arms,
                default,
            } => {
                let (rs, _t) = self.ann(scrut);
                let result = self.st.fresh_ty();
                let mut rarms = Vec::new();
                for (k, a) in arms {
                    let (ra, ta) = self.ann_armed(a);
                    self.st.unify(&ta, &result);
                    rarms.push((*k, ra));
                }
                let (rd, td) = self.ann_armed(default);
                self.st.unify(&td, &result);
                (
                    RExp::SwitchInt {
                        scrut: Box::new(rs),
                        arms: rarms,
                        default: Box::new(rd),
                    },
                    result,
                )
            }
            LExp::SwitchStr {
                scrut,
                arms,
                default,
            } => {
                let (rs, t) = self.ann(scrut);
                self.get_ty(&t);
                let result = self.st.fresh_ty();
                let mut rarms = Vec::new();
                for (k, a) in arms {
                    let (ra, ta) = self.ann_armed(a);
                    self.st.unify(&ta, &result);
                    rarms.push((k.clone(), ra));
                }
                let (rd, td) = self.ann_armed(default);
                self.st.unify(&td, &result);
                (
                    RExp::SwitchStr {
                        scrut: Box::new(rs),
                        arms: rarms,
                        default: Box::new(rd),
                    },
                    result,
                )
            }
            LExp::SwitchExn {
                scrut,
                arms,
                default,
            } => {
                let (rs, t) = self.ann(scrut);
                self.get_ty(&t);
                let result = self.st.fresh_ty();
                let mut rarms = Vec::new();
                for (k, a) in arms {
                    let (ra, ta) = self.ann_armed(a);
                    self.st.unify(&ta, &result);
                    rarms.push((*k, ra));
                }
                let (rd, td) = self.ann_armed(default);
                self.st.unify(&td, &result);
                (
                    RExp::SwitchExn {
                        scrut: Box::new(rs),
                        arms: rarms,
                        default: Box::new(rd),
                    },
                    result,
                )
            }
            LExp::If(c, th, el) => {
                let (rc, _) = self.ann(c);
                let (rt, tt) = self.ann_armed(th);
                let (re, te) = self.ann_armed(el);
                self.st.unify(&tt, &te);
                (RExp::If(Box::new(rc), Box::new(rt), Box::new(re)), tt)
            }
            LExp::Fn { params, body, .. } => {
                let ptys: Vec<RTy> = params.iter().map(|_| self.st.fresh_ty()).collect();
                for ((v, _), t) in params.iter().zip(&ptys) {
                    self.env.insert(*v, Bind::Mono(t.clone()));
                }
                let eff = self.st.fresh_eff();
                self.cur_eff.push(eff);
                let (rb, tb) = self.ann(body);
                let rb = self.marker(rb, &tb, body);
                self.cur_eff.pop();
                let clos = self.st.fresh_reg();
                self.put(clos);
                self.weaken_captures(e, eff);
                let ty = RTy::Arrow(ptys, eff, Box::new(tb), clos);
                (
                    RExp::Fn {
                        params: params.iter().map(|(v, _)| *v).collect(),
                        body: Box::new(rb),
                        at: RegVar(clos),
                    },
                    ty,
                )
            }
            LExp::App(f, args) => self.ann_app(f, args),
            LExp::Let { var, rhs, body, .. } => {
                let (rrhs, trhs) = {
                    let (r, t) = self.ann(rhs);
                    (self.marker(r, &t, rhs), t)
                };
                if is_value(rhs) {
                    // Type-polymorphic, region-monomorphic generalization.
                    // Only type variables reachable through the rhs's own
                    // free variables can be shared with the environment.
                    let fvs = rhs.free_vars();
                    let (_frv, _fev, env_ftv) = self.env_free_sets(&fvs);
                    let mut ftv = BTreeSet::new();
                    self.st.ftv(&trhs, &mut ftv);
                    let qtys: Vec<u32> = ftv.difference(&env_ftv).copied().collect();
                    self.env.insert(
                        *var,
                        Bind::PolyVal(RScheme {
                            qtys,
                            qregs: Vec::new(),
                            qeffs: Vec::new(),
                            ty: trhs,
                        }),
                    );
                } else {
                    self.env.insert(*var, Bind::Mono(trhs));
                }
                let (rb, tb) = self.ann(body);
                (
                    RExp::Let {
                        var: *var,
                        rhs: Box::new(rrhs),
                        body: Box::new(rb),
                    },
                    tb,
                )
            }
            LExp::Fix { funs, body } => self.ann_fix(funs, body),
            LExp::ExCon { exn, arg } => {
                let info = self.prog.exns.get(*exn).clone();
                match (arg, info.arg) {
                    (None, _) => (
                        RExp::ExCon {
                            exn: *exn,
                            arg: None,
                            at: None,
                        },
                        {
                            let r = self.st.fresh_reg();
                            RTy::Exn(r)
                        },
                    ),
                    (Some(a), _) => {
                        let (ra, ta) = self.ann(a);
                        // Exception payloads escape non-locally (raising
                        // unwinds the region stack), so their regions are
                        // forced global.
                        let mut f = BTreeSet::new();
                        self.st.frv(&ta, &mut f);
                        self.global_frv.extend(f);
                        let r = self.st.fresh_reg();
                        self.put(r);
                        self.global_frv.insert(r);
                        (
                            RExp::ExCon {
                                exn: *exn,
                                arg: Some(Box::new(ra)),
                                at: Some(RegVar(r)),
                            },
                            RTy::Exn(r),
                        )
                    }
                }
            }
            LExp::DeExn { exn, scrut } => {
                let (rs, t) = self.ann(scrut);
                self.get_ty(&t);
                let arg_lty = self
                    .prog
                    .exns
                    .get(*exn)
                    .arg
                    .clone()
                    .expect("deexn of nullary exception");
                let ty = self.rty_of_lty(&arg_lty);
                // The payload regions were forced global at construction;
                // fresh regions here are safe over-approximations that also
                // become global through unification at use sites.
                let mut f = BTreeSet::new();
                self.st.frv(&ty, &mut f);
                self.global_frv.extend(f);
                (
                    RExp::DeExn {
                        exn: *exn,
                        scrut: Box::new(rs),
                    },
                    ty,
                )
            }
            LExp::Raise { exp, .. } => {
                let (re, t) = self.ann(exp);
                let mut f = BTreeSet::new();
                self.st.frv(&t, &mut f);
                self.global_frv.extend(f);
                (RExp::Raise(Box::new(re)), self.st.fresh_ty())
            }
            LExp::Handle { body, var, handler } => {
                let (rb, tb) = {
                    let (r, t) = self.ann(body);
                    (self.marker(r, &t, body), t)
                };
                let exn_reg = self.st.fresh_reg();
                self.global_frv.insert(exn_reg);
                self.env.insert(*var, Bind::Mono(RTy::Exn(exn_reg)));
                let (rh, th) = {
                    let (r, t) = self.ann(handler);
                    (self.marker(r, &t, handler), t)
                };
                self.st.unify(&tb, &th);
                (
                    RExp::Handle {
                        body: Box::new(rb),
                        var: *var,
                        handler: Box::new(rh),
                    },
                    tb,
                )
            }
        }
    }

    /// Annotates a branch arm, wrapping it in a letregion candidate.
    fn ann_armed(&mut self, e: &LExp) -> (RExp, RTy) {
        let (r, t) = self.ann(e);
        (self.marker(r, &t, e), t)
    }

    fn ann_con(&mut self, tycon: TyConId, con: ConId, arg: Option<&LExp>) -> (RExp, RTy) {
        let dt = self.prog.data.get(tycon);
        let arity = dt.arity;
        let scheme = dt.constructors[con.0 as usize].arg.clone();
        let targs: Vec<RTy> = (0..arity).map(|_| self.st.fresh_ty()).collect();
        let spine = self.st.fresh_reg();
        match (arg, scheme) {
            (None, None) => (
                RExp::Con {
                    tycon,
                    con,
                    arg: None,
                    at: None,
                },
                RTy::Con(tycon, targs, spine),
            ),
            (Some(a), Some(s)) => {
                let (ra, ta) = self.ann(a);
                let want = self.conv_scheme(&s, &targs, spine);
                self.st.unify(&ta, &want);
                self.put(spine);
                (
                    RExp::Con {
                        tycon,
                        con,
                        arg: Some(Box::new(ra)),
                        at: Some(RegVar(spine)),
                    },
                    RTy::Con(tycon, targs, spine),
                )
            }
            _ => panic!("constructor arity mismatch in region inference"),
        }
    }

    fn ann_prim(&mut self, p: Prim, args: &[LExp]) -> (RExp, RTy) {
        let mut ras = Vec::new();
        let mut tys = Vec::new();
        for a in args {
            let (ra, t) = self.ann(a);
            ras.push(ra);
            tys.push(t);
        }
        use Prim::*;
        // Constrain operand types to the primitive's expected shapes (the
        // operand may still be an unresolved variable otherwise).
        match p {
            RAdd | RSub | RMul | RDiv | RLt | RLe | RGt | RGe | REq => {
                for t in &tys {
                    let r = self.st.fresh_reg();
                    self.st.unify(t, &RTy::Real(r));
                }
            }
            RNeg | RAbs | Sqrt | Sin | Cos | Atan | Exp | Floor | Trunc | RtoS => {
                let r = self.st.fresh_reg();
                self.st.unify(&tys[0], &RTy::Real(r));
            }
            Ln => {
                let r = self.st.fresh_reg();
                self.st.unify(&tys[0], &RTy::Real(r));
            }
            StrEq | StrLt | StrConcat => {
                for t in &tys {
                    let r = self.st.fresh_reg();
                    self.st.unify(t, &RTy::Str(r));
                }
            }
            StrSize | Print => {
                let r = self.st.fresh_reg();
                self.st.unify(&tys[0], &RTy::Str(r));
            }
            StrSub => {
                let r = self.st.fresh_reg();
                self.st.unify(&tys[0], &RTy::Str(r));
                self.st.unify(&tys[1], &RTy::Int);
            }
            RefGet | RefSet => {
                let inner = self.st.fresh_ty();
                let r = self.st.fresh_reg();
                self.st.unify(&tys[0], &RTy::Ref(Box::new(inner), r));
            }
            RefEq => {
                for t in &tys {
                    let inner = self.st.fresh_ty();
                    let r = self.st.fresh_reg();
                    self.st.unify(t, &RTy::Ref(Box::new(inner), r));
                }
            }
            ArrSub | ArrUpd | ArrLen => {
                let inner = self.st.fresh_ty();
                let r = self.st.fresh_reg();
                self.st.unify(&tys[0], &RTy::Array(Box::new(inner), r));
            }
            ArrEq => {
                for t in &tys {
                    let inner = self.st.fresh_ty();
                    let r = self.st.fresh_reg();
                    self.st.unify(t, &RTy::Array(Box::new(inner), r));
                }
            }
            _ => {}
        }
        // Reads touch the operands' outer regions.
        for t in &tys {
            self.get_ty(t);
        }
        let (place, ty): (Option<Reg>, RTy) = match p {
            IAdd | ISub | IMul | IDiv | IMod | INeg | IAbs => (None, RTy::Int),
            ILt | ILe | IGt | IGe | IEq => (None, RTy::Bool),
            RLt | RLe | RGt | RGe | REq => (None, RTy::Bool),
            RAdd | RSub | RMul | RDiv | RNeg | RAbs | IntToReal | Sqrt | Sin | Cos | Atan | Ln
            | Exp => {
                let r = self.st.fresh_reg();
                self.put(r);
                (Some(r), RTy::Real(r))
            }
            Floor | Trunc => (None, RTy::Int),
            StrEq | StrLt => (None, RTy::Bool),
            StrConcat | ItoS | RtoS | Chr => {
                let r = self.st.fresh_reg();
                self.put(r);
                (Some(r), RTy::Str(r))
            }
            StrSize | StrSub => (None, RTy::Int),
            Print => (None, RTy::Unit),
            RefNew => {
                let r = self.st.fresh_reg();
                self.put(r);
                (Some(r), RTy::Ref(Box::new(tys[0].clone()), r))
            }
            RefGet => {
                let RTy::Ref(inner, _) = self.st.resolve(&tys[0]) else {
                    panic!("deref of non-ref")
                };
                (None, (*inner).clone())
            }
            RefSet => {
                let RTy::Ref(inner, _) = self.st.resolve(&tys[0]) else {
                    panic!("assign to non-ref")
                };
                self.st.unify(&inner, &tys[1]);
                (None, RTy::Unit)
            }
            RefEq | ArrEq => (None, RTy::Bool),
            ArrNew => {
                let r = self.st.fresh_reg();
                self.put(r);
                (Some(r), RTy::Array(Box::new(tys[1].clone()), r))
            }
            ArrSub => {
                let RTy::Array(inner, _) = self.st.resolve(&tys[0]) else {
                    panic!("sub of non-array")
                };
                (None, (*inner).clone())
            }
            ArrUpd => {
                let RTy::Array(inner, _) = self.st.resolve(&tys[0]) else {
                    panic!("update of non-array")
                };
                self.st.unify(&inner, &tys[2]);
                (None, RTy::Unit)
            }
            ArrLen => (None, RTy::Int),
        };
        (RExp::Prim(p, ras, place.map(RegVar)), ty)
    }

    fn ann_app(&mut self, f: &LExp, args: &[LExp]) -> (RExp, RTy) {
        // Known call to a fix-bound function?
        if let LExp::Var(v) = f {
            if let Some(Bind::Fix(s)) = self.env.get(v).cloned() {
                let inst: Instance = self.st.instantiate(&s);
                let RTy::Arrow(ps, eff, ret, shared_reg) = self.st.resolve(&inst.ty) else {
                    panic!("fix function with non-arrow type")
                };
                assert_eq!(ps.len(), args.len(), "fix call arity mismatch");
                let mut rargs_exps = Vec::new();
                for (a, pt) in args.iter().zip(&ps) {
                    let (ra, ta) = self.ann(a);
                    self.st.unify(&ta, pt);
                    rargs_exps.push(ra);
                }
                let e = self.eff();
                self.st.eff_add_child(e, eff);
                self.st.eff_add_reg(e, shared_reg);
                return (
                    RExp::App {
                        callee: Box::new(RExp::Var(*v)),
                        rargs: inst.reg_actuals.iter().map(|&r| RegVar(r)).collect(),
                        args: rargs_exps,
                    },
                    (*ret).clone(),
                );
            }
        }
        let (rf, tf) = self.ann(f);
        let mut ras = Vec::new();
        let mut tys = Vec::new();
        for a in args {
            let (ra, t) = self.ann(a);
            ras.push(ra);
            tys.push(t);
        }
        let eff = self.st.fresh_eff();
        let ret = self.st.fresh_ty();
        let clos = self.st.fresh_reg();
        let want = RTy::Arrow(tys, eff, Box::new(ret.clone()), clos);
        self.st.unify(&tf, &want);
        let e = self.eff();
        self.st.eff_add_child(e, eff);
        self.st.eff_add_reg(e, clos);
        (
            RExp::App {
                callee: Box::new(rf),
                rargs: Vec::new(),
                args: ras,
            },
            ret,
        )
    }

    /// §2.6 weakening: captured values' regions join the closure's latent
    /// effect so they cannot be deallocated while the closure lives.
    fn weaken_captures(&mut self, lexp: &LExp, eff: Eff) {
        if !self.gc_safe {
            return;
        }
        for v in lexp.free_vars() {
            let Some(b) = self.env.get(&v).cloned() else {
                continue;
            };
            let ty = match b {
                Bind::Mono(t) => t,
                Bind::PolyVal(s) | Bind::Fix(s) => s.ty,
            };
            let mut f = BTreeSet::new();
            self.st.frv(&ty, &mut f);
            for r in f {
                self.st.eff_add_reg(eff, r);
            }
        }
    }

    fn ann_fix(&mut self, funs: &[FixFun], body: &LExp) -> (RExp, RTy) {
        const MAX_ITERS: usize = 6;
        let group: Vec<VarId> = funs.iter().map(|f| f.var).collect();
        let fix_node_fvs = {
            // Free variables of the fix node itself (excluding the group).
            let mut fvs = BTreeSet::new();
            for f in funs {
                fvs.extend(f.body.free_vars());
            }
            for f in funs {
                fvs.remove(&f.var);
                for (p, _) in &f.params {
                    fvs.remove(p);
                }
            }
            fvs
        };
        let (env_frv, env_fev, env_ftv) = self.env_free_sets(&fix_node_fvs);

        // One shared closure region for the whole group; it is never
        // quantified (the closure is allocated exactly once).
        let shared_reg = self.st.fresh_reg();
        let mut env_frv_plus = env_frv.clone();
        env_frv_plus.insert(shared_reg);

        // Iteration 0: region-monomorphic recursion.
        let mut schemes: Vec<RScheme> = Vec::new();
        let mut bodies: Vec<(Vec<RExp>, Vec<RTy>)> = Vec::new(); // per-iteration
        let mut converged = false;
        for iter in 0..=MAX_ITERS {
            // Fresh arrow skeletons for this round.
            let mut arrows = Vec::new();
            for f in funs {
                let ptys: Vec<RTy> = f.params.iter().map(|_| self.st.fresh_ty()).collect();
                let ret = self.st.fresh_ty();
                let eff = self.st.fresh_eff();
                arrows.push(RTy::Arrow(ptys, eff, Box::new(ret), shared_reg));
            }
            // Bind the group: monomorphic in round 0, then against the
            // previous round's schemes (region-polymorphic recursion).
            if iter == 0 {
                for (f, arrow) in funs.iter().zip(&arrows) {
                    self.env.insert(f.var, Bind::Mono(arrow.clone()));
                }
            } else {
                for (i, f) in funs.iter().enumerate() {
                    self.env.insert(f.var, Bind::Fix(schemes[i].clone()));
                }
            }
            // Annotate bodies against this round's skeletons.
            let mut rbodies = Vec::new();
            for (f, arrow) in funs.iter().zip(&arrows) {
                let RTy::Arrow(ptys, eff, ret, _) = arrow else {
                    unreachable!()
                };
                for ((v, _), t) in f.params.iter().zip(ptys) {
                    self.env.insert(*v, Bind::Mono(t.clone()));
                }
                self.cur_eff.push(*eff);
                let (rb, tb) = self.ann(&f.body);
                let rb = self.marker(rb, &tb, &f.body);
                self.cur_eff.pop();
                self.st.unify(&tb, ret);
                self.weaken_captures(
                    &LExp::Fix {
                        funs: funs.to_vec(),
                        body: Box::new(LExp::Unit),
                    },
                    *eff,
                );
                rbodies.push(rb);
            }
            // Generalize this round's arrows.
            let new_schemes: Vec<RScheme> = arrows
                .iter()
                .map(|a| self.st.generalize(a, &env_frv_plus, &env_fev, &env_ftv))
                .collect();
            let same = !schemes.is_empty()
                && schemes
                    .iter()
                    .zip(&new_schemes)
                    .all(|(a, b)| self.scheme_alpha_eq(a, b));
            if std::env::var_os("KIT_REGION_DEBUG").is_some() {
                for (f, sch) in funs.iter().zip(&new_schemes) {
                    let shown = self.show_ty(&sch.ty);
                    eprintln!(
                        "[region] iter {iter} {}: qtys={} qregs={:?} qeffs={} same={same} ty={shown}",
                        self.prog.vars.name(f.var),
                        sch.qtys.len(),
                        sch.qregs,
                        sch.qeffs.len()
                    );
                }
            }
            bodies.push((rbodies, arrows));
            schemes = new_schemes;
            if same {
                converged = true;
                break;
            }
        }
        if !converged {
            if std::env::var_os("KIT_REGION_DEBUG").is_some() {
                for f in funs {
                    eprintln!("[region] fixpoint fallback: {}", self.prog.vars.name(f.var));
                }
            }
            // Fall back to the sound region-monomorphic result: redo one
            // round with Mono bindings.
            let mut arrows = Vec::new();
            for f in funs {
                let ptys: Vec<RTy> = f.params.iter().map(|_| self.st.fresh_ty()).collect();
                let ret = self.st.fresh_ty();
                let eff = self.st.fresh_eff();
                arrows.push(RTy::Arrow(ptys, eff, Box::new(ret), shared_reg));
            }
            for (f, arrow) in funs.iter().zip(&arrows) {
                self.env.insert(f.var, Bind::Mono(arrow.clone()));
            }
            let mut rbodies = Vec::new();
            for (f, arrow) in funs.iter().zip(&arrows) {
                let RTy::Arrow(ptys, eff, ret, _) = arrow else {
                    unreachable!()
                };
                for ((v, _), t) in f.params.iter().zip(ptys) {
                    self.env.insert(*v, Bind::Mono(t.clone()));
                }
                self.cur_eff.push(*eff);
                let (rb, tb) = self.ann(&f.body);
                let rb = self.marker(rb, &tb, &f.body);
                self.cur_eff.pop();
                self.st.unify(&tb, ret);
                rbodies.push(rb);
            }
            // Region/effect-monomorphic, but still type-polymorphic —
            // HM already established type generality; only region and
            // effect quantification depends on the fixed point.
            schemes = arrows
                .iter()
                .map(|a| {
                    let mut s = self.st.generalize(a, &env_frv_plus, &env_fev, &env_ftv);
                    s.qregs.clear();
                    s.qeffs.clear();
                    s
                })
                .collect();
            bodies.push((rbodies, arrows));
        }

        let (final_bodies, _arrows) = bodies.pop().unwrap();

        // Determine runtime formals: quantified regions that actually
        // receive allocations in the body (syntactic places / rargs).
        for (i, f) in funs.iter().enumerate() {
            let mut occ = BTreeSet::new();
            collect_places(&final_bodies[i], &mut self.st, &mut occ);
            let formal_idx: Vec<usize> = schemes[i]
                .qregs
                .iter()
                .enumerate()
                .filter(|(_, &q)| occ.contains(&self.st.find_reg_ro(q)))
                .map(|(k, _)| k)
                .collect();
            self.fixmeta.insert(f.var, FixMeta { formal_idx });
        }

        // Bind the final schemes for the let-body.
        for (f, s) in funs.iter().zip(&schemes) {
            self.env.insert(f.var, Bind::Fix(s.clone()));
        }
        self.put(shared_reg);
        let (rb, tb) = self.ann(body);
        let rfuns: Vec<RFixFun> = funs
            .iter()
            .zip(final_bodies)
            .zip(&schemes)
            .map(|((f, rbody), s)| RFixFun {
                var: f.var,
                formals: s.qregs.iter().map(|&r| RegVar(r)).collect(), // filtered in finalize
                params: f.params.iter().map(|(v, _)| *v).collect(),
                body: rbody,
            })
            .collect();
        let _ = group;
        (
            RExp::Fix {
                funs: rfuns,
                body: Box::new(rb),
                at: RegVar(shared_reg),
            },
            tb,
        )
    }

    /// Alpha-equivalence of two schemes (quantified variables matched by a
    /// bijection built during a parallel walk; free variables must be the
    /// same canonical representatives).
    fn scheme_alpha_eq(&mut self, a: &RScheme, b: &RScheme) -> bool {
        if a.qtys.len() != b.qtys.len()
            || a.qregs.len() != b.qregs.len()
            || a.qeffs.len() != b.qeffs.len()
        {
            return false;
        }
        let qa: BTreeSet<Reg> = a.qregs.iter().map(|&r| self.st.find_reg(r)).collect();
        let qb: BTreeSet<Reg> = b.qregs.iter().map(|&r| self.st.find_reg(r)).collect();
        let ea: BTreeSet<Eff> = a.qeffs.iter().map(|&e| self.st.find_eff(e)).collect();
        let eb: BTreeSet<Eff> = b.qeffs.iter().map(|&e| self.st.find_eff(e)).collect();
        let mut rmap = HashMap::new();
        let mut emap = HashMap::new();
        let ta = a.ty.clone();
        let tb = b.ty.clone();
        self.ty_alpha_eq(&ta, &tb, &qa, &qb, &ea, &eb, &mut rmap, &mut emap)
    }

    #[allow(clippy::too_many_arguments)]
    fn ty_alpha_eq(
        &mut self,
        a: &RTy,
        b: &RTy,
        qa: &BTreeSet<Reg>,
        qb: &BTreeSet<Reg>,
        ea: &BTreeSet<Eff>,
        eb: &BTreeSet<Eff>,
        rmap: &mut HashMap<Reg, Reg>,
        emap: &mut HashMap<Eff, Eff>,
    ) -> bool {
        let ra = self.st.resolve(a);
        let rb = self.st.resolve(b);
        let reg_eq = |st: &mut Stores, r1: Reg, r2: Reg, rmap: &mut HashMap<Reg, Reg>| {
            let c1 = st.find_reg(r1);
            let c2 = st.find_reg(r2);
            match (qa.contains(&c1), qb.contains(&c2)) {
                (true, true) => *rmap.entry(c1).or_insert(c2) == c2,
                (false, false) => c1 == c2,
                _ => false,
            }
        };
        match (&ra, &rb) {
            (RTy::Var(_), RTy::Var(_)) => true, // type vars: shape only
            (RTy::Int, RTy::Int) | (RTy::Bool, RTy::Bool) | (RTy::Unit, RTy::Unit) => true,
            (RTy::Real(r1), RTy::Real(r2))
            | (RTy::Str(r1), RTy::Str(r2))
            | (RTy::Exn(r1), RTy::Exn(r2)) => reg_eq(&mut self.st, *r1, *r2, rmap),
            (RTy::Tuple(x, r1), RTy::Tuple(y, r2)) if x.len() == y.len() => {
                if !reg_eq(&mut self.st, *r1, *r2, rmap) {
                    return false;
                }
                x.iter()
                    .zip(y)
                    .all(|(p, q)| self.ty_alpha_eq(p, q, qa, qb, ea, eb, rmap, emap))
            }
            (RTy::Arrow(x, e1, xr, r1), RTy::Arrow(y, e2, yr, r2)) if x.len() == y.len() => {
                if !reg_eq(&mut self.st, *r1, *r2, rmap) {
                    return false;
                }
                let c1 = self.st.find_eff(*e1);
                let c2 = self.st.find_eff(*e2);
                // Effects are compared positionally only: their member
                // sets are monotone over-approximations that may keep
                // growing without affecting the quantification shape.
                let eff_ok = match (ea.contains(&c1), eb.contains(&c2)) {
                    (true, true) => *emap.entry(c1).or_insert(c2) == c2,
                    (false, false) => c1 == c2,
                    _ => false,
                };
                if !eff_ok {
                    return false;
                }
                if !x
                    .iter()
                    .zip(y)
                    .all(|(p, q)| self.ty_alpha_eq(p, q, qa, qb, ea, eb, rmap, emap))
                {
                    return false;
                }
                self.ty_alpha_eq(xr, yr, qa, qb, ea, eb, rmap, emap)
            }
            (RTy::Con(c1, x, r1), RTy::Con(c2, y, r2)) if c1 == c2 && x.len() == y.len() => {
                if !reg_eq(&mut self.st, *r1, *r2, rmap) {
                    return false;
                }
                x.iter()
                    .zip(y)
                    .all(|(p, q)| self.ty_alpha_eq(p, q, qa, qb, ea, eb, rmap, emap))
            }
            (RTy::Ref(x, r1), RTy::Ref(y, r2)) | (RTy::Array(x, r1), RTy::Array(y, r2)) => {
                reg_eq(&mut self.st, *r1, *r2, rmap)
                    && self.ty_alpha_eq(x, y, qa, qb, ea, eb, rmap, emap)
            }
            _ => false,
        }
    }

    /// Debug rendering of a resolved type with canonical region ids.
    fn show_ty(&mut self, ty: &RTy) -> String {
        match self.st.resolve(ty) {
            RTy::Var(v) => format!("'t{v}"),
            RTy::Int => "int".into(),
            RTy::Bool => "bool".into(),
            RTy::Unit => "unit".into(),
            RTy::Real(r) => format!("real@{}", self.st.find_reg(r)),
            RTy::Str(r) => format!("str@{}", self.st.find_reg(r)),
            RTy::Exn(r) => format!("exn@{}", self.st.find_reg(r)),
            RTy::Tuple(ts, r) => {
                let inner: Vec<String> = ts.iter().map(|t| self.show_ty(t)).collect();
                format!("({})@{}", inner.join("*"), self.st.find_reg(r))
            }
            RTy::Arrow(ps, e, b, r) => {
                let inner: Vec<String> = ps.iter().map(|t| self.show_ty(t)).collect();
                let eb = self.show_ty(&b);
                let ec = self.st.find_eff(e);
                format!(
                    "(({})-e{}->{})@{}",
                    inner.join(","),
                    ec,
                    eb,
                    self.st.find_reg(r)
                )
            }
            RTy::Con(c, ts, r) => {
                let inner: Vec<String> = ts.iter().map(|t| self.show_ty(t)).collect();
                format!("C{}<{}>@{}", c.0, inner.join(","), self.st.find_reg(r))
            }
            RTy::Ref(t, r) => format!("ref({})@{}", self.show_ty(&t), self.st.find_reg(r)),
            RTy::Array(t, r) => format!("arr({})@{}", self.show_ty(&t), self.st.find_reg(r)),
        }
    }

    fn rty_of_lty(&mut self, t: &kit_lambda::ty::LTy) -> RTy {
        use kit_lambda::ty::LTy;
        match t {
            LTy::TyVar(_) => self.st.fresh_ty(),
            LTy::Int => RTy::Int,
            LTy::Bool => RTy::Bool,
            LTy::Unit => RTy::Unit,
            LTy::Real => RTy::Real(self.st.fresh_reg()),
            LTy::Str => RTy::Str(self.st.fresh_reg()),
            LTy::Exn => RTy::Exn(self.st.fresh_reg()),
            LTy::Con(c, ts) => {
                let nts = ts.iter().map(|t| self.rty_of_lty(t)).collect();
                RTy::Con(*c, nts, self.st.fresh_reg())
            }
            LTy::Arrow(a, b) => {
                let na = self.rty_of_lty(a);
                let nb = self.rty_of_lty(b);
                let e = self.st.fresh_eff();
                RTy::Arrow(vec![na], e, Box::new(nb), self.st.fresh_reg())
            }
            LTy::Tuple(ts) => {
                let nts = ts.iter().map(|t| self.rty_of_lty(t)).collect();
                RTy::Tuple(nts, self.st.fresh_reg())
            }
            LTy::Ref(t) => RTy::Ref(Box::new(self.rty_of_lty(t)), self.st.fresh_reg()),
            LTy::Array(t) => RTy::Array(Box::new(self.rty_of_lty(t)), self.st.fresh_reg()),
        }
    }

    // ----------------------------------------------------------- finalize

    /// Resolves all region ids to dense numbering, filters fix formals and
    /// call-site actuals to the runtime formals, and computes the marker
    /// escape sets.
    fn finalize(mut self, body: RExp) -> Annotated {
        let mut dense: HashMap<Reg, RegVar> = HashMap::new();
        let mut next = 0u32;
        let mut canon = |st: &mut Stores, dense: &mut HashMap<Reg, RegVar>, r: RegVar| {
            let c = st.find_reg(r.0);
            *dense.entry(c).or_insert_with(|| {
                let v = RegVar(next);
                next += 1;
                v
            })
        };

        let mut body = body;
        // Filter formals/rargs, then canonicalize places.
        filter_formals(&mut body, &self.fixmeta);
        rewrite_places(&mut body, &mut |r| canon(&mut self.st, &mut dense, r));

        let marker_escapes: Vec<BTreeSet<RegVar>> = {
            let mut out = Vec::with_capacity(self.markers.len());
            let markers = std::mem::take(&mut self.markers);
            for m in &markers {
                let mut set = BTreeSet::new();
                for (ty, excl) in &m.tys {
                    let mut f = BTreeSet::new();
                    self.st.frv(ty, &mut f);
                    for q in excl {
                        f.remove(&self.st.find_reg(*q));
                    }
                    for r in f {
                        set.insert(canon(&mut self.st, &mut dense, RegVar(r)));
                    }
                }
                out.push(set);
            }
            out
        };
        let global_escapes: BTreeSet<RegVar> = {
            let g = std::mem::take(&mut self.global_frv);
            g.into_iter()
                .map(|r| canon(&mut self.st, &mut dense, RegVar(r)))
                .collect()
        };
        Annotated {
            prog: RProgram {
                data: self.prog.data.clone(),
                exns: self.prog.exns.clone(),
                vars: self.prog.vars.clone(),
                body,
                globals: Vec::new(),
                num_regvars: next,
                mults: HashMap::new(),
            },
            marker_escapes,
            global_escapes,
        }
    }
}

/// Collects all canonical places syntactically occurring in `e`.
fn collect_places(e: &RExp, st: &mut Stores, out: &mut BTreeSet<Reg>) {
    for p in e.own_places() {
        let c = st.find_reg(p.0);
        out.insert(c);
    }
    // Formals of nested fixes are binders, not occurrences; but their
    // bodies' places still count (they are allocated through the formal at
    // runtime, bound at call sites — for the *enclosing* function the rargs
    // at call sites already count).
    e.for_each_child(|c| collect_places(c, st, out));
}

/// Filters `Fix` formals and matching call-site/escape `rargs` down to the
/// runtime formals (quantified regions with allocations).
fn filter_formals(e: &mut RExp, meta: &HashMap<VarId, FixMeta>) {
    e.for_each_child_mut(|c| filter_formals(c, meta));
    match e {
        RExp::Fix { funs, .. } => {
            for f in funs {
                if let Some(m) = meta.get(&f.var) {
                    f.formals = m.formal_idx.iter().map(|&i| f.formals[i]).collect();
                }
            }
        }
        RExp::App { callee, rargs, .. } => {
            if let RExp::Var(v) = callee.as_ref() {
                if let Some(m) = meta.get(v) {
                    *rargs = m.formal_idx.iter().map(|&i| rargs[i]).collect();
                }
            }
        }
        RExp::FixVar { var, rargs, .. } => {
            if let Some(m) = meta.get(var) {
                *rargs = m.formal_idx.iter().map(|&i| rargs[i]).collect();
            }
        }
        _ => {}
    }
}

/// Rewrites every place through `f` (canonicalization).
fn rewrite_places(e: &mut RExp, f: &mut impl FnMut(RegVar) -> RegVar) {
    match e {
        RExp::Real(_, p) | RExp::Record(_, p) | RExp::Fn { at: p, .. } => *p = f(*p),
        RExp::Fix { at, funs, .. } => {
            *at = f(*at);
            for fun in funs.iter_mut() {
                for r in &mut fun.formals {
                    *r = f(*r);
                }
            }
        }
        RExp::Prim(_, _, Some(p)) => *p = f(*p),
        RExp::Con { at: Some(p), .. } | RExp::ExCon { at: Some(p), .. } => *p = f(*p),
        RExp::FixVar { rargs, at, .. } => {
            for r in rargs.iter_mut() {
                *r = f(*r);
            }
            *at = f(*at);
        }
        RExp::App { rargs, .. } => {
            for r in rargs.iter_mut() {
                *r = f(*r);
            }
        }
        _ => {}
    }
    e.for_each_child_mut(|c| rewrite_places(c, f));
}

/// Syntactic values may be generalized (type variables only).
fn is_value(e: &LExp) -> bool {
    match e {
        LExp::Fn { .. }
        | LExp::Var(_)
        | LExp::Int(_)
        | LExp::Real(_)
        | LExp::Str(_)
        | LExp::Bool(_)
        | LExp::Unit => true,
        LExp::Record(es) => es.iter().all(is_value),
        LExp::Con { arg, .. } => arg.as_deref().map(is_value).unwrap_or(true),
        _ => false,
    }
}
