//! `letregion` placement.
//!
//! A region variable ρ is bound at the *lowest* candidate point (marker)
//! whose subtree contains every syntactic occurrence of ρ, provided ρ does
//! not escape that point — i.e. ρ is absent from the type of the
//! expression, from the types of its free variables, and from the global
//! escape set (program result and exception payloads). Remaining regions
//! become the program's **global regions** (the paper's `r1`, `r2`, ...),
//! pushed at program start and popped at exit.

use crate::annotate::Annotated;
#[cfg(test)]
use crate::rexp::RProgram;
use crate::rexp::{Mult, RExp, RegVar};
use std::collections::{BTreeSet, HashMap};

/// Replaces [`RExp::Marker`]s with `letregion` bindings, filling
/// `prog.globals` with the remaining regions.
pub fn place(ann: &mut Annotated) {
    let mut body = std::mem::replace(&mut ann.prog.body, RExp::Unit);
    // Total occurrence counts: a region may only be bound at a marker whose
    // subtree contains *every* occurrence (otherwise a sibling use — e.g.
    // the actual region of a later call — would be out of scope).
    let mut totals: HashMap<RegVar, usize> = HashMap::new();
    count_occurrences(&body, &mut totals);
    let mut bound = BTreeSet::new();
    let occ = walk(
        &mut body,
        &ann.marker_escapes,
        &ann.global_escapes,
        &totals,
        &mut bound,
    );
    // Everything not bound anywhere becomes a global region. Regions that
    // never occur syntactically (e.g. the regions of string constants) are
    // dropped entirely. `occ` is a HashMap, so the surviving set is sorted:
    // global-region push order must not depend on hash seeding, or the
    // runtime region stack (and everything downstream of it, like the
    // parallel collector's work partition) varies from compile to compile.
    let mut globals: Vec<(RegVar, Mult)> = occ
        .keys()
        .filter(|r| !bound.contains(r))
        .map(|&r| (r, Mult::Infinite))
        .collect();
    globals.sort_unstable_by_key(|&(r, _)| r);
    ann.prog.globals = globals;
    ann.prog.body = body;
}

fn count_occurrences(e: &RExp, out: &mut HashMap<RegVar, usize>) {
    for p in e.own_places() {
        *out.entry(p).or_default() += 1;
    }
    e.for_each_child(|c| count_occurrences(c, out));
}

/// Bottom-up walk returning the occurrence counts of the subtree; binds
/// regions at markers and rewrites them into `Letregion` nodes.
fn walk(
    e: &mut RExp,
    escapes: &[BTreeSet<RegVar>],
    global: &BTreeSet<RegVar>,
    totals: &HashMap<RegVar, usize>,
    bound: &mut BTreeSet<RegVar>,
) -> HashMap<RegVar, usize> {
    let mut occ: HashMap<RegVar, usize> = HashMap::new();
    for p in e.own_places() {
        *occ.entry(p).or_default() += 1;
    }
    e.for_each_child_mut(|c| {
        let sub = walk(c, escapes, global, totals, bound);
        for (r, n) in sub {
            *occ.entry(r).or_default() += n;
        }
    });
    if let RExp::Marker { id, body } = e {
        let esc = &escapes[*id as usize];
        // Sorted: `occ` iterates in hash order, and the order chosen here
        // is the order the VM pushes the regions in, so it must be a
        // function of the program alone (see `place` on globals).
        let mut cands: Vec<RegVar> = occ
            .iter()
            .filter(|(r, n)| {
                !bound.contains(r)
                    && !esc.contains(r)
                    && !global.contains(r)
                    && totals.get(r) == Some(n)
            })
            .map(|(r, _)| *r)
            .collect();
        cands.sort_unstable();
        let inner = std::mem::replace(body.as_mut(), RExp::Unit);
        if cands.is_empty() {
            *e = inner;
        } else {
            bound.extend(cands.iter().copied());
            *e = RExp::Letregion {
                regs: cands.into_iter().map(|r| (r, Mult::Infinite)).collect(),
                body: Box::new(inner),
            };
        }
    }
    occ
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rexp::RExp;

    fn marker(id: u32, body: RExp) -> RExp {
        RExp::Marker {
            id,
            body: Box::new(body),
        }
    }

    #[test]
    fn binds_local_region_at_marker() {
        // marker 0 wraps an allocation at ρ0 whose escape set is empty.
        let mut ann = Annotated {
            prog: dummy_prog(marker(0, RExp::Record(vec![RExp::Int(1)], RegVar(0)))),
            marker_escapes: vec![BTreeSet::new()],
            global_escapes: BTreeSet::new(),
        };
        place(&mut ann);
        let RExp::Letregion { regs, .. } = &ann.prog.body else {
            panic!("expected letregion, got {:?}", ann.prog.body)
        };
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].0, RegVar(0));
        assert!(ann.prog.globals.is_empty());
    }

    #[test]
    fn escaping_region_becomes_global() {
        let mut esc = BTreeSet::new();
        esc.insert(RegVar(0));
        let mut ann = Annotated {
            prog: dummy_prog(marker(0, RExp::Record(vec![RExp::Int(1)], RegVar(0)))),
            marker_escapes: vec![esc],
            global_escapes: BTreeSet::new(),
        };
        place(&mut ann);
        assert!(
            matches!(ann.prog.body, RExp::Record(_, _)),
            "marker dissolved"
        );
        assert_eq!(ann.prog.globals, vec![(RegVar(0), Mult::Infinite)]);
    }

    #[test]
    fn inner_marker_wins() {
        // Nested markers: the inner one binds ρ0 first.
        let inner = marker(1, RExp::Record(vec![RExp::Int(1)], RegVar(0)));
        let outer = marker(0, inner);
        let mut ann = Annotated {
            prog: dummy_prog(outer),
            marker_escapes: vec![BTreeSet::new(), BTreeSet::new()],
            global_escapes: BTreeSet::new(),
        };
        place(&mut ann);
        // The outer marker dissolves; the inner becomes the letregion.
        let RExp::Letregion { regs, .. } = &ann.prog.body else {
            panic!("expected letregion, got {:?}", ann.prog.body)
        };
        assert_eq!(regs[0].0, RegVar(0));
    }

    #[test]
    fn global_escape_blocks_binding() {
        let mut glob = BTreeSet::new();
        glob.insert(RegVar(0));
        let mut ann = Annotated {
            prog: dummy_prog(marker(0, RExp::Record(vec![RExp::Int(1)], RegVar(0)))),
            marker_escapes: vec![BTreeSet::new()],
            global_escapes: glob,
        };
        place(&mut ann);
        assert_eq!(ann.prog.globals.len(), 1);
    }

    fn dummy_prog(body: RExp) -> RProgram {
        RProgram {
            data: kit_lambda::ty::DataEnv::new(),
            exns: kit_lambda::ty::ExnEnv::new(),
            vars: kit_lambda::exp::VarTable::new(),
            body,
            globals: Vec::new(),
            num_regvars: 8,
            mults: Default::default(),
        }
    }
}
