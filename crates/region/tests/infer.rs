//! End-to-end region-inference tests: MiniML source → LambdaExp →
//! RegionExp, with structural validation (region scoping, no leftover
//! markers) and qualitative checks of the inference (region-polymorphic
//! recursion, §2.6 weakening, `gt`-mode collapse).

use kit_region::{infer, Mult, RExp, RProgram, RegVar, RegionOptions};
use std::collections::HashSet;

fn compile(src: &str, opts: RegionOptions) -> RProgram {
    let mut prog = kit_typing::compile_str(src).expect("front-end failed");
    kit_lambda::opt::optimize(&mut prog, &Default::default());
    infer(&prog, opts)
}

/// Checks that every place is in scope (bound by letregion, a formal of an
/// enclosing fix function, or global) and that no markers remain.
fn validate(p: &RProgram) {
    let mut scope: HashSet<RegVar> = p.globals.iter().map(|(r, _)| *r).collect();
    check(&p.body, &mut scope);
}

fn check(e: &RExp, scope: &mut HashSet<RegVar>) {
    for r in e.own_places() {
        assert!(
            scope.contains(&r),
            "region r{} used out of scope in {e:?}",
            r.0
        );
    }
    match e {
        RExp::Marker { .. } => panic!("marker survived placement"),
        RExp::Letregion { regs, body } => {
            let fresh: Vec<RegVar> = regs
                .iter()
                .map(|(r, _)| *r)
                .filter(|r| scope.insert(*r))
                .collect();
            check(body, scope);
            for r in fresh {
                scope.remove(&r);
            }
        }
        RExp::Fix { funs, body, .. } => {
            for f in funs {
                let fresh: Vec<RegVar> = f
                    .formals
                    .iter()
                    .copied()
                    .filter(|r| scope.insert(*r))
                    .collect();
                check(&f.body, scope);
                for r in fresh {
                    scope.remove(&r);
                }
            }
            check(body, scope);
        }
        _ => e.for_each_child(|c| check(c, scope)),
    }
}

fn count_letregions(e: &RExp) -> usize {
    let mut n = 0;
    if matches!(e, RExp::Letregion { .. }) {
        n += 1;
    }
    e.for_each_child(|c| n += count_letregions(c));
    n
}

fn count_finite(e: &RExp) -> usize {
    let mut n = 0;
    if let RExp::Letregion { regs, .. } = e {
        n += regs.iter().filter(|(_, m)| *m == Mult::Finite).count();
    }
    e.for_each_child(|c| n += count_finite(c));
    n
}

fn find_fix_formals(e: &RExp, out: &mut Vec<usize>) {
    if let RExp::Fix { funs, .. } = e {
        for f in funs {
            out.push(f.formals.len());
        }
    }
    e.for_each_child(|c| find_fix_formals(c, out));
}

const MODES: [RegionOptions; 4] = [
    RegionOptions {
        gc_safe: false,
        disable: false,
        disable_finite: false,
    },
    RegionOptions {
        gc_safe: true,
        disable: false,
        disable_finite: false,
    },
    RegionOptions {
        gc_safe: true,
        disable: true,
        disable_finite: false,
    },
    RegionOptions {
        gc_safe: true,
        disable: true,
        disable_finite: true,
    },
];

#[test]
fn simple_program_validates_in_all_modes() {
    for opts in MODES {
        let p = compile(
            "val it = let val pair = (1, 2) in fst pair + snd pair end",
            opts,
        );
        validate(&p);
    }
}

#[test]
fn local_tuple_gets_local_region() {
    let p = compile(
        "fun use (x, y) = x + y
         val it = use (3, 4) + use (5, 6)",
        RegionOptions::regions_only(),
    );
    validate(&p);
    assert!(
        count_letregions(&p.body) >= 1,
        "argument tuples should be letregion-bound"
    );
}

#[test]
fn finite_regions_inferred_for_single_tuples() {
    let p = compile(
        "val it = let val pair = (1, 2) in fst pair end",
        RegionOptions::regions_only(),
    );
    validate(&p);
    assert!(
        count_finite(&p.body) >= 1,
        "one-shot pair should be finite:\n{}",
        kit_region::pretty::program_to_string(&p)
    );
}

#[test]
fn recursive_list_building_validates() {
    for opts in MODES {
        let p = compile(
            "fun build 0 = nil | build n = n :: build (n - 1)
             val it = length (build 100)",
            opts,
        );
        validate(&p);
    }
}

#[test]
fn region_polymorphic_recursion_gives_formals() {
    // `build` allocates its result list in a region chosen by the caller:
    // it must carry at least one formal region parameter.
    let p = compile(
        "fun build 0 = nil | build n = n :: build (n - 1)
         val it = length (build 100)",
        RegionOptions::regions_only(),
    );
    validate(&p);
    let mut formals = Vec::new();
    find_fix_formals(&p.body, &mut formals);
    assert!(
        formals.iter().any(|&n| n >= 1),
        "expected region-polymorphic functions, formals: {formals:?}\n{}",
        kit_region::pretty::program_to_string(&p)
    );
}

#[test]
fn intermediate_lists_not_global() {
    // The classic region win: an intermediate list dies inside the
    // enclosing expression instead of escaping to a global region.
    let p = compile(
        "fun sum nil = 0 | sum (x :: xs) = x + sum xs
         fun build 0 = nil | build n = n :: build (n - 1)
         val it = sum (build 1000)",
        RegionOptions::regions_only(),
    );
    validate(&p);
    assert!(
        count_letregions(&p.body) >= 1,
        "intermediate list should be region-bound:\n{}",
        kit_region::pretty::program_to_string(&p)
    );
}

#[test]
fn disable_mode_has_no_infinite_letregions() {
    let p = compile(
        "fun build 0 = nil | build n = n :: build (n - 1)
         val it = length (build 50)",
        RegionOptions::disabled(),
    );
    validate(&p);
    fn no_infinite(e: &RExp) {
        if let RExp::Letregion { regs, .. } = e {
            assert!(
                regs.iter().all(|(_, m)| *m == Mult::Finite),
                "gt mode must not bind infinite regions locally"
            );
        }
        e.for_each_child(no_infinite);
    }
    no_infinite(&p.body);
    // Exactly one infinite global region (plus possibly finite globals).
    let inf_globals = p
        .globals
        .iter()
        .filter(|(_, m)| *m == Mult::Infinite)
        .count();
    assert_eq!(inf_globals, 1, "globals: {:?}", p.globals);
}

#[test]
fn weakening_keeps_captured_region_alive() {
    // Paper §2.6: `g` returns a closure capturing a pair it never uses.
    // Without weakening the pair's region may be deallocated before the
    // closure (a safe dangling pointer); with gc_safe the pair's region
    // must escape the `val h = g (2,3)` binding.
    let src = "
        fun f x = 17
        fun g v = fn y => f v + y
        val h = g (2, 3)
        val it = h 5";
    let without = compile(src, RegionOptions::regions_only());
    let with = compile(src, RegionOptions::with_gc());
    validate(&without);
    validate(&with);
    // In gc-safe mode the tuple must be allocated in a region that is
    // still in scope at the top level — i.e. not bound by a letregion
    // that closes before `h` is applied. We check the weaker structural
    // property that gc-safe binds strictly fewer regions locally.
    let n_without = count_letregions(&without.body);
    let n_with = count_letregions(&with.body);
    assert!(
        n_with <= n_without,
        "weakening must not create more local regions ({n_with} vs {n_without})"
    );
}

#[test]
fn closures_and_hofs_validate() {
    for opts in MODES {
        let p = compile(
            "val it = foldl (fn (x, a) => x + a) 0 (map (fn x => x * 2) (upto (1, 50)))",
            opts,
        );
        validate(&p);
    }
}

#[test]
fn exceptions_validate() {
    for opts in MODES {
        let p = compile(
            "exception Found of int
             fun find p nil = raise Found ~1
               | find p (x :: xs) = if p x then x else find p xs
             val it = (find (fn x => x > 10) [1, 2]) handle Found n => n",
            opts,
        );
        validate(&p);
    }
}

#[test]
fn refs_and_arrays_validate() {
    for opts in MODES {
        let p = compile(
            "val r = ref 0
             val a = array (10, nil)
             val _ = aupdate (a, 3, [1,2,3])
             val _ = r := length (asub (a, 3))
             val it = !r",
            opts,
        );
        validate(&p);
    }
}

#[test]
fn reals_and_strings_validate() {
    for opts in MODES {
        let p = compile(
            "val x = 1.5 + 2.5
             val s = \"a\" ^ itos (floor x)
             val it = size s",
            opts,
        );
        validate(&p);
    }
}

#[test]
fn pretty_printer_shows_structure() {
    let p = compile(
        "val it = let val pair = (1, 2) in fst pair end",
        RegionOptions::regions_only(),
    );
    let s = kit_region::pretty::program_to_string(&p);
    assert!(s.contains("globals ["), "{s}");
    assert!(s.contains("at r"), "{s}");
}
