//! Top-level façade for the region-inference + garbage-collection
//! reproduction (Hallenberg, Elsman, Tofte — PLDI 2002).
//!
//! This crate re-exports the public API of the [`kit`] crate; see the
//! workspace `README.md` for the architecture overview and `DESIGN.md` for
//! the per-experiment index.
//!
//! # Examples
//!
//! ```
//! use mlkit_rgc::{Compiler, Mode};
//!
//! let out = Compiler::new(Mode::Rgt).run_source("val it = 1 + 2")?;
//! assert_eq!(out.result_int(), Some(3));
//! # Ok::<(), mlkit_rgc::Error>(())
//! ```

pub use kit::*;
